package packet

import "encoding/binary"

// View holds the header offsets of a frame, computed by a single linear
// scan — the software model of the hardware parser stage every PPE
// pipeline shares. It is the fast-path complement to the full layered
// decoder: one pass fills offsets for L2/VLAN/ARP, IPv4/IPv6 (with
// extension-header skipping), and TCP/UDP/ICMP, plus fast-path field
// accessors for DNS and DHCPv4. Parse allocates nothing, so apps and the
// traffic generator can keep a View per instance and reuse it per frame.
//
// A View is a weaker oracle than Decode on purpose: it ignores the IP
// total-length fields (hardware streams the wire bytes it has), so it can
// report offsets on frames the strict decoder rejects as truncated. The
// FuzzViewVsDecode differential target pins the invariant that matters:
// whenever the full decoder accepts a layer, the View agrees with it.
type View struct {
	Data []byte

	L3Off   int // start of ARP/IPv4/IPv6 header (after VLAN tags)
	VLANEnd int // byte after the last VLAN tag (== L3Off when tagged)
	NVLAN   int

	IsARP  bool
	IsIPv4 bool
	IsIPv6 bool
	Proto  IPProtocol // final protocol after IPv6 extension headers
	L4Off  int        // start of TCP/UDP/ICMP header; 0 if absent/fragment
	L7Off  int        // start of TCP/UDP payload; 0 if absent

	SrcPort, DstPort uint16 // 0 for port-less protocols
}

// maxViewVLANs caps the VLAN stack the parser walks, like the fixed
// extraction window of a hardware parser.
const maxViewVLANs = 4

// maxViewExtHeaders caps the IPv6 extension-header chain.
const maxViewExtHeaders = 8

// Parse fills the view. It returns false for frames too short to carry
// Ethernet or with a malformed L3 header.
func (v *View) Parse(data []byte) bool {
	*v = View{Data: data}
	if len(data) < 14 {
		return false
	}
	et := EtherType(binary.BigEndian.Uint16(data[12:14]))
	off := 14
	for (et == EtherTypeDot1Q || et == EtherTypeQinQ) && v.NVLAN < maxViewVLANs {
		if len(data) < off+4 {
			return false
		}
		et = EtherType(binary.BigEndian.Uint16(data[off+2 : off+4]))
		off += 4
		v.NVLAN++
	}
	v.VLANEnd = off
	v.L3Off = off
	switch et {
	case EtherTypeIPv4:
		return v.parseIPv4(off)
	case EtherTypeIPv6:
		return v.parseIPv6(off)
	case EtherTypeARP:
		return v.parseARP(off)
	default:
		return true // L2-only frame: valid, no L3 view
	}
}

func (v *View) parseIPv4(off int) bool {
	d := v.Data
	if len(d) < off+20 || d[off]>>4 != 4 {
		return false
	}
	ihl := int(d[off]&0x0f) * 4
	if ihl < 20 || len(d) < off+ihl {
		return false
	}
	v.IsIPv4 = true
	v.Proto = IPProtocol(d[off+9])
	fragOff := binary.BigEndian.Uint16(d[off+6:off+8]) & 0x1fff
	if fragOff == 0 {
		v.L4Off = off + ihl
		v.parseL4()
	}
	return true
}

// parseIPv6 walks the fixed header plus any well-known extension headers
// (hop-by-hop, routing, destination options, fragment) to the real upper
// layer, the way a hardware parser's header-chain FSM does. Unknown next
// headers terminate the walk as the final protocol.
func (v *View) parseIPv6(off int) bool {
	d := v.Data
	if len(d) < off+40 || d[off]>>4 != 6 {
		return false
	}
	v.IsIPv6 = true
	nh := IPProtocol(d[off+6])
	p := off + 40
	for hop := 0; hop < maxViewExtHeaders; hop++ {
		switch nh {
		case IPProtocolIPv6HopByHop, IPProtocolIPv6Routing, IPProtocolIPv6DestOpts:
			if len(d) < p+8 {
				v.Proto = nh // truncated extension header: no L4 view
				return true
			}
			nh = IPProtocol(d[p])
			p += 8 + int(d[p+1])*8
		case IPProtocolIPv6Fragment:
			if len(d) < p+8 {
				v.Proto = nh
				return true
			}
			fragOff := binary.BigEndian.Uint16(d[p+2:p+4]) >> 3
			nh = IPProtocol(d[p])
			p += 8
			if fragOff != 0 {
				// Non-first fragment: the L4 header lives in another
				// frame. Report the protocol, no ports (IPv4 parity).
				v.Proto = nh
				return true
			}
		case IPProtocolIPv6NoNext:
			v.Proto = nh
			return true
		default:
			v.Proto = nh
			if p <= len(d) {
				v.L4Off = p
				v.parseL4()
			}
			return true
		}
	}
	v.Proto = nh // chain longer than any sane frame: stop without L4
	return true
}

// parseARP validates the fixed IPv4-over-Ethernet ARP shape (the only one
// the catalog speaks, matching the full ARP layer decoder).
func (v *View) parseARP(off int) bool {
	d := v.Data
	if len(d) < off+28 {
		return true // runt ARP: L2-valid, no ARP view
	}
	if binary.BigEndian.Uint16(d[off:off+2]) != 1 ||
		EtherType(binary.BigEndian.Uint16(d[off+2:off+4])) != EtherTypeIPv4 ||
		d[off+4] != 6 || d[off+5] != 4 {
		return true
	}
	v.IsARP = true
	return true
}

func (v *View) parseL4() {
	d := v.Data
	switch v.Proto {
	case IPProtocolTCP:
		if len(d) >= v.L4Off+4 {
			v.SrcPort = binary.BigEndian.Uint16(d[v.L4Off:])
			v.DstPort = binary.BigEndian.Uint16(d[v.L4Off+2:])
			if len(d) >= v.L4Off+13 {
				if dataOff := v.L4Off + int(d[v.L4Off+12]>>4)*4; dataOff >= v.L4Off+20 && dataOff <= len(d) {
					v.L7Off = dataOff
				}
			}
		} else {
			v.L4Off = 0
		}
	case IPProtocolUDP:
		if len(d) >= v.L4Off+4 {
			v.SrcPort = binary.BigEndian.Uint16(d[v.L4Off:])
			v.DstPort = binary.BigEndian.Uint16(d[v.L4Off+2:])
			if len(d) >= v.L4Off+8 {
				v.L7Off = v.L4Off + 8
			}
		} else {
			v.L4Off = 0
		}
	}
}

// SrcIPv4 / DstIPv4 return address slices (valid only when IsIPv4).

// SrcIPv4 returns the IPv4 source address bytes.
func (v *View) SrcIPv4() []byte { return v.Data[v.L3Off+12 : v.L3Off+16] }

// DstIPv4 returns the IPv4 destination address bytes.
func (v *View) DstIPv4() []byte { return v.Data[v.L3Off+16 : v.L3Off+20] }

// IPv4HeaderLen returns the IPv4 header length in bytes.
func (v *View) IPv4HeaderLen() int { return int(v.Data[v.L3Off]&0x0f) * 4 }

// ARP field accessors, valid only when IsARP.

// ARPOperation returns the ARP opcode (ARPRequest / ARPReply).
func (v *View) ARPOperation() uint16 {
	return binary.BigEndian.Uint16(v.Data[v.L3Off+6 : v.L3Off+8])
}

// ARPSenderMAC returns the 6-byte sender hardware address.
func (v *View) ARPSenderMAC() []byte { return v.Data[v.L3Off+8 : v.L3Off+14] }

// ARPSenderIP returns the 4-byte sender protocol address.
func (v *View) ARPSenderIP() []byte { return v.Data[v.L3Off+14 : v.L3Off+18] }

// ARPTargetMAC returns the 6-byte target hardware address.
func (v *View) ARPTargetMAC() []byte { return v.Data[v.L3Off+18 : v.L3Off+24] }

// ARPTargetIP returns the 4-byte target protocol address.
func (v *View) ARPTargetIP() []byte { return v.Data[v.L3Off+24 : v.L3Off+28] }

// Incremental checksum update per RFC 1624: HC' = ~(~HC + ~m + m').

// CsumUpdate16 folds the replacement of old16 by new16 into the checksum
// stored at data[at:at+2] (stored as the complement, per the Internet
// checksum convention). A stored checksum of 0 (UDP "no checksum") is
// left alone.
func CsumUpdate16(data []byte, at int, old16, new16 uint16) {
	stored := binary.BigEndian.Uint16(data[at:])
	if stored == 0 {
		return
	}
	sum := uint32(^stored) + uint32(^old16) + uint32(new16)
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	binary.BigEndian.PutUint16(data[at:], ^uint16(sum))
}

// CsumUpdate32 folds a 4-byte field replacement into a checksum.
func CsumUpdate32(data []byte, at int, old4, new4 []byte) {
	CsumUpdate16(data, at, binary.BigEndian.Uint16(old4[0:2]), binary.BigEndian.Uint16(new4[0:2]))
	CsumUpdate16(data, at, binary.BigEndian.Uint16(old4[2:4]), binary.BigEndian.Uint16(new4[2:4]))
}

// L4ChecksumOffset returns the absolute offset of the L4 checksum field,
// or -1 when the protocol has none we patch.
func (v *View) L4ChecksumOffset() int {
	if v.L4Off == 0 {
		return -1
	}
	switch v.Proto {
	case IPProtocolTCP:
		if len(v.Data) >= v.L4Off+18 {
			return v.L4Off + 16
		}
	case IPProtocolUDP:
		if len(v.Data) >= v.L4Off+8 {
			return v.L4Off + 6
		}
	}
	return -1
}

// RewriteIPv4Addr replaces the 4-byte address at addrOff, fixing the IPv4
// header checksum and the L4 pseudo-header checksum.
func (v *View) RewriteIPv4Addr(addrOff int, newAddr []byte) {
	var old [4]byte // stack copy: this runs once per translated packet
	copy(old[:], v.Data[addrOff:addrOff+4])
	copy(v.Data[addrOff:addrOff+4], newAddr)
	CsumUpdate32(v.Data, v.L3Off+10, old[:], newAddr)
	if at := v.L4ChecksumOffset(); at >= 0 {
		CsumUpdate32(v.Data, at, old[:], newAddr)
	}
}

// FNV64 hashes b with FNV-1a (the software stand-in for the PPE's hash
// unit).
func FNV64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// FiveTupleKeyBits is the ACL/LB/flow key width.
const FiveTupleKeyBits = 104

// FiveTupleKey packs the 104-bit (13-byte) 5-tuple match key used by the
// ACL, LB and flow-accounting tables: srcIP(4) dstIP(4) sport(2) dport(2)
// proto(1). IPv6 flows fold their addresses to 32 bits by hashing, which
// is what a key-width-limited pipeline does.
func (v *View) FiveTupleKey(buf []byte) []byte {
	// Direct stores at fixed offsets — the key register a real pipeline
	// latches field by field, with no intermediate slices.
	key := buf[:13]
	switch {
	case v.IsIPv4:
		copy(key[0:4], v.SrcIPv4())
		copy(key[4:8], v.DstIPv4())
	case v.IsIPv6:
		s := FNV64(v.Data[v.L3Off+8 : v.L3Off+24])
		d := FNV64(v.Data[v.L3Off+24 : v.L3Off+40])
		binary.BigEndian.PutUint32(key[0:4], uint32(s))
		binary.BigEndian.PutUint32(key[4:8], uint32(d))
	default:
		for i := 0; i < 8; i++ {
			key[i] = 0
		}
	}
	binary.BigEndian.PutUint16(key[8:10], v.SrcPort)
	binary.BigEndian.PutUint16(key[10:12], v.DstPort)
	key[12] = byte(v.Proto)
	return key
}

// DNS fast-path accessors: fixed-header fields read straight off the
// wire, for match-action pipelines that cannot afford the full decoder.

// DNSPayload returns the DNS message bytes when the frame is UDP to or
// from port 53 with at least a full 12-byte DNS header present.
func (v *View) DNSPayload() ([]byte, bool) {
	if v.Proto != IPProtocolUDP || v.L7Off == 0 ||
		(v.SrcPort != PortDNS && v.DstPort != PortDNS) ||
		len(v.Data) < v.L7Off+12 {
		return nil, false
	}
	return v.Data[v.L7Off:], true
}

// DNSID returns the DNS transaction ID (valid when DNSPayload ok).
func (v *View) DNSID() uint16 { return binary.BigEndian.Uint16(v.Data[v.L7Off:]) }

// DNSIsResponse reports the QR bit (valid when DNSPayload ok).
func (v *View) DNSIsResponse() bool { return v.Data[v.L7Off+2]&0x80 != 0 }

// DNSQDCount returns the question count (valid when DNSPayload ok).
func (v *View) DNSQDCount() uint16 { return binary.BigEndian.Uint16(v.Data[v.L7Off+4:]) }

// DNSQName appends the first question's name, lowercased and
// dot-separated, to buf and returns the extended slice. It reads labels
// in place with no intermediate allocation; compressed names (illegal in
// a first question) and malformed labels return ok=false.
func (v *View) DNSQName(buf []byte) (name []byte, ok bool) {
	msg, ok := v.DNSPayload()
	if !ok || binary.BigEndian.Uint16(msg[4:6]) == 0 {
		return buf, false
	}
	p := 12
	for {
		if p >= len(msg) {
			return buf, false
		}
		l := int(msg[p])
		if l == 0 {
			return buf, true
		}
		if l >= 0xc0 || p+1+l > len(msg) || len(buf)+l+1 > 255 {
			return buf, false
		}
		if len(buf) > 0 {
			buf = append(buf, '.')
		}
		for _, c := range msg[p+1 : p+1+l] {
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			buf = append(buf, c)
		}
		p += 1 + l
	}
}

// DHCPv4 fast-path accessors: fixed BOOTP fields plus a linear option
// scan, valid when the frame is UDP on the DHCP ports with a full
// fixed header and magic cookie.

// DHCPPayload returns the DHCP message bytes when the frame is UDP
// between ports 67/68 with the 240-byte fixed header and magic cookie.
func (v *View) DHCPPayload() ([]byte, bool) {
	if v.Proto != IPProtocolUDP || v.L7Off == 0 {
		return nil, false
	}
	dhcpPort := func(p uint16) bool { return p == PortDHCPServer || p == PortDHCPClient }
	if !dhcpPort(v.SrcPort) && !dhcpPort(v.DstPort) {
		return nil, false
	}
	msg := v.Data[v.L7Off:]
	if len(msg) < DHCPFixedLen || binary.BigEndian.Uint32(msg[236:240]) != dhcpMagicCookie {
		return nil, false
	}
	return msg, true
}

// DHCPOp returns the BOOTP op (1 request, 2 reply); valid when
// DHCPPayload ok.
func (v *View) DHCPOp() uint8 { return v.Data[v.L7Off] }

// DHCPXID returns the transaction ID; valid when DHCPPayload ok.
func (v *View) DHCPXID() uint32 { return binary.BigEndian.Uint32(v.Data[v.L7Off+4:]) }

// DHCPClientMAC returns the 6-byte chaddr; valid when DHCPPayload ok.
func (v *View) DHCPClientMAC() []byte { return v.Data[v.L7Off+28 : v.L7Off+34] }

// DHCPClientIP returns ciaddr; valid when DHCPPayload ok.
func (v *View) DHCPClientIP() []byte { return v.Data[v.L7Off+12 : v.L7Off+16] }

// DHCPYourIP returns yiaddr (the address a server offers/assigns); valid
// when DHCPPayload ok.
func (v *View) DHCPYourIP() []byte { return v.Data[v.L7Off+16 : v.L7Off+20] }

// DHCPMsgType scans the options for option 53 and returns the DHCP
// message type (Discover/Offer/Request/Ack/...), or ok=false when absent
// or malformed.
func (v *View) DHCPMsgType() (DHCPMsgType, bool) {
	msg, ok := v.DHCPPayload()
	if !ok {
		return 0, false
	}
	p := DHCPFixedLen
	for p < len(msg) {
		code := msg[p]
		switch code {
		case DHCPOptPad:
			p++
		case DHCPOptEnd:
			return 0, false
		default:
			if p+2 > len(msg) {
				return 0, false
			}
			l := int(msg[p+1])
			if p+2+l > len(msg) {
				return 0, false
			}
			if code == DHCPOptMsgType && l == 1 {
				return DHCPMsgType(msg[p+2]), true
			}
			p += 2 + l
		}
	}
	return 0, false
}
