package apps

import (
	"encoding/json"
	"fmt"
	"net/netip"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// NATTableSize is the paper's table capacity: 32,768 flows, which maps to
// exactly 160 LSRAM blocks (Table 1).
const NATTableSize = 32768

// NATConfig is the static mapping set loaded at boot; further mappings
// are added at runtime through the control plane.
type NATConfig struct {
	// Direction limits translation ("edge-to-optical" for the paper's
	// outgoing-source-NAT; default both ways with reverse translation
	// when Bidirectional).
	Direction string `json:"direction,omitempty"`
	// Mappings are internal→external 1:1 source translations.
	Mappings []NATMapping `json:"mappings,omitempty"`
}

// NATMapping is one static 1:1 translation.
type NATMapping struct {
	Internal string `json:"internal"`
	External string `json:"external"`
}

// natApp is the §5.1 case study: static one-to-one source NAT translating
// source IPs of outgoing (edge→optical) traffic at 10 Gb/s line rate. The
// declarative structure is exactly the Table 1 design: parse eth+ipv4,
// one 32→32-bit exact table of 32,768 entries, hash, rewrite, checksum
// fixup, two stages.
type natApp struct {
	prog  *ppe.Program
	state *ppe.State
	table *ppe.Table
	stats *ppe.CounterBank
	dir   string
	v     packet.View
}

// NAT counter indexes (bank "stats").
const (
	NATTranslated = iota
	NATMissPassed
	NATNonIPv4
	natCounters
)

// NewNAT builds a NAT instance.
func NewNAT() *natApp {
	a := &natApp{state: ppe.NewState()}
	spec := ppe.TableSpec{Name: "nat", Kind: ppe.TableExact, KeyBits: 32, ValueBits: 32, Size: NATTableSize}
	a.table = a.state.AddTable(spec)
	a.stats = a.state.AddCounters("stats", natCounters)
	a.prog = &ppe.Program{
		Name:        "nat",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeIPv4},
		Tables:      []ppe.TableSpec{spec},
		Actions: []ppe.ActionSpec{
			{Kind: ppe.ActionHash, Bits: 32},
			{Kind: ppe.ActionRewrite, Bits: 32},
			{Kind: ppe.ActionChecksum},
		},
		Stages:  2,
		Handler: ppe.HandlerFunc(a.handle),
	}
	return a
}

// Program implements core.App.
func (a *natApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *natApp) State() *ppe.State { return a.state }

// Configure implements core.App.
func (a *natApp) Configure(config []byte) error {
	if len(config) == 0 {
		return nil
	}
	var cfg NATConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return fmt.Errorf("nat: %w", err)
	}
	a.dir = cfg.Direction
	for _, m := range cfg.Mappings {
		in, err := netip.ParseAddr(m.Internal)
		if err != nil {
			return fmt.Errorf("nat: internal %q: %w", m.Internal, err)
		}
		out, err := netip.ParseAddr(m.External)
		if err != nil {
			return fmt.Errorf("nat: external %q: %w", m.External, err)
		}
		if !in.Is4() || !out.Is4() {
			return fmt.Errorf("nat: mappings must be IPv4")
		}
		i4, o4 := in.As4(), out.As4()
		if err := a.table.Add(i4[:], o4[:]); err != nil {
			return err
		}
	}
	return nil
}

// AddMapping inserts a translation at runtime (the control-plane path
// uses the table via mgmt; this is the embedding-API convenience).
func (a *natApp) AddMapping(internal, external netip.Addr) error {
	i4, o4 := internal.As4(), external.As4()
	return a.table.Add(i4[:], o4[:])
}

func (a *natApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	if !dirEnabled(a.dir, ctx.Dir) {
		return ppe.VerdictPass
	}
	if !a.v.Parse(ctx.Data) || !a.v.IsIPv4 {
		a.stats.Inc(NATNonIPv4, len(ctx.Data))
		return ppe.VerdictPass
	}
	v := &a.v
	newIP, ok := a.table.Lookup(v.SrcIPv4())
	if !ok {
		a.stats.Inc(NATMissPassed, len(ctx.Data))
		return ppe.VerdictPass
	}
	v.RewriteIPv4Addr(v.L3Off+12, newIP)
	a.stats.Inc(NATTranslated, len(ctx.Data))
	return ppe.VerdictPass
}
