package paper

// Golden compatibility tests for the internal/exp port.
//
// The files under testdata/ are byte captures of `flexsfp-bench -json`
// taken BEFORE the experiment harness was ported from the root package
// into internal/exp/paper:
//
//	golden_default.json  flexsfp-bench -json                  (seed 1, trials 1)
//	golden_trials.json   flexsfp-bench -json -seed 7 -trials 3 -run power,linerate,reliability
//	golden_faults.json   flexsfp-bench -json -seed 5 -trials 2 -run faults -fault-rate 0.5
//
// Each test replays the same run through the registry and asserts the
// ported experiments produce semantically identical JSON — compared
// field by field on the legacy `metrics` payload (the result struct),
// so envelope additions (params echo, summary metrics) and timing
// fields (wall_ms) are allowed, but any drift in experiment output is
// not.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flexsfp/internal/exp"
)

// goldenReport mirrors the flexsfp-bench -json blob shape.
type goldenReport struct {
	Seed        int64 `json:"seed"`
	Trials      int   `json:"trials"`
	Parallel    int   `json:"parallel"`
	Experiments []struct {
		Name    string          `json:"name"`
		Metrics json.RawMessage `json:"metrics"`
	} `json:"experiments"`
}

func loadGolden(t *testing.T, name string) goldenReport {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var rep goldenReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("parse golden %s: %v", name, err)
	}
	if len(rep.Experiments) == 0 {
		t.Fatalf("golden %s has no experiments", name)
	}
	return rep
}

// replayGolden runs every experiment recorded in the golden capture
// through the registry with the capture's recorded knobs and compares
// the marshalled result struct field by field.
func replayGolden(t *testing.T, file string, ctx exp.RunContext) {
	t.Helper()
	rep := loadGolden(t, file)
	if rep.Seed != ctx.Seed || rep.Trials != ctx.Trials {
		t.Fatalf("golden %s recorded seed=%d trials=%d, replaying with seed=%d trials=%d",
			file, rep.Seed, rep.Trials, ctx.Seed, ctx.Trials)
	}
	for _, ge := range rep.Experiments {
		ge := ge
		t.Run(ge.Name, func(t *testing.T) {
			t.Parallel()
			e, ok := exp.Default.Lookup(ge.Name)
			if !ok {
				t.Fatalf("experiment %q from golden capture is not registered", ge.Name)
			}
			res, err := e.Run(ctx)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			got, err := json.Marshal(res.Envelope().Detail)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var want, have any
			if err := json.Unmarshal(ge.Metrics, &want); err != nil {
				t.Fatalf("unmarshal golden metrics: %v", err)
			}
			if err := json.Unmarshal(got, &have); err != nil {
				t.Fatalf("unmarshal replay metrics: %v", err)
			}
			if !reflect.DeepEqual(want, have) {
				t.Errorf("ported %s output drifted from pre-refactor capture\ngolden: %s\n   got: %s",
					ge.Name, ge.Metrics, got)
			}
		})
	}
}

// TestGoldenDefaultRun pins the default single-trial run of the full
// visible suite (12 experiments) to the pre-port capture.
func TestGoldenDefaultRun(t *testing.T) {
	replayGolden(t, "golden_default.json", exp.RunContext{Seed: 1, Trials: 1, FaultRate: 0.2})
}

// TestGoldenMultiTrialRun pins the multi-seed aggregation paths (the
// former *Trials entry points) for the three stochastic experiments.
func TestGoldenMultiTrialRun(t *testing.T) {
	replayGolden(t, "golden_trials.json", exp.RunContext{Seed: 7, Trials: 3, FaultRate: 0.2})
}

// TestGoldenFaultSweep pins the opt-in chaos sweep, including the
// FaultRate knob that used to be a bespoke -fault-rate plumbing path.
func TestGoldenFaultSweep(t *testing.T) {
	replayGolden(t, "golden_faults.json", exp.RunContext{Seed: 5, Trials: 2, FaultRate: 0.5})
}
