package mgmt

// Read-side observability over the management protocol: MsgTelemetry
// returns the module's metric snapshot, MsgTraceDump the buffered packet
// traces. Both carry JSON bodies — these are management-plane reads of
// slow-path snapshots, so the compact TLV encoding buys nothing and the
// self-describing form feeds flexsfp-ctl output and the daemon's HTTP
// endpoint directly.

import (
	"encoding/json"

	"flexsfp/internal/telemetry"
)

// SetTelemetry attaches the registry the agent serves snapshots from.
// Wiring-time only; a nil registry (the default) makes the telemetry ops
// return CodeBadState.
func (a *Agent) SetTelemetry(reg *telemetry.Registry) { a.tel = reg }

func (a *Agent) telemetrySnap() Message {
	if a.tel == nil {
		return errMsg(CodeBadState, "telemetry not enabled")
	}
	b, err := json.Marshal(a.tel.Snapshot())
	if err != nil {
		return errMsg(CodeOpFailed, err.Error())
	}
	return ok(b)
}

func (a *Agent) traceDump(body []byte) Message {
	if a.tel == nil || a.tel.Tracer() == nil {
		return errMsg(CodeBadState, "tracing not enabled")
	}
	max := 0
	if len(body) > 0 {
		r := bodyReader{b: body}
		max = int(r.u32())
		if r.err != nil {
			return errMsg(CodeBadBody, "trace-dump")
		}
	}
	evs := a.tel.Tracer().Events()
	if max > 0 && len(evs) > max {
		evs = evs[len(evs)-max:] // keep the most recent
	}
	b, err := json.Marshal(evs)
	if err != nil {
		return errMsg(CodeOpFailed, err.Error())
	}
	return ok(b)
}

// Telemetry fetches the module's metric snapshot.
func (c *Client) Telemetry() (telemetry.Snapshot, error) {
	body, err := c.do(MsgTelemetry, nil)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	var s telemetry.Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		return telemetry.Snapshot{}, err
	}
	return s, nil
}

// Traces fetches up to max buffered packet-trace events (0 = all),
// oldest first.
func (c *Client) Traces(max int) ([]telemetry.TraceEvent, error) {
	var w bodyWriter
	w.u32(uint32(max))
	body, err := c.do(MsgTraceDump, w.b)
	if err != nil {
		return nil, err
	}
	var evs []telemetry.TraceEvent
	if err := json.Unmarshal(body, &evs); err != nil {
		return nil, err
	}
	return evs, nil
}
