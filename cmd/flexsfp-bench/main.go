// Command flexsfp-bench regenerates every table and figure of the
// FlexSFP paper's evaluation and prints paper-versus-model reports.
//
// Usage:
//
//	flexsfp-bench                  # run everything
//	flexsfp-bench -run table1,power
//	flexsfp-bench -seed 42
//
// Experiments: table1, table2, table3, power, linerate, arch, scale,
// gap, reliability, formfactor, latency, retrofit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flexsfp"
)

func main() {
	runList := flag.String("run", "all", "comma-separated experiments to run (all, table1, table2, table3, power, linerate, arch, scale, gap, reliability, formfactor, latency, retrofit)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	want := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }
	ran := 0

	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "flexsfp-bench: %s: %v\n", name, err)
		os.Exit(1)
	}
	section := func(body string) {
		fmt.Println(body)
		ran++
	}

	if selected("table1") {
		section(flexsfp.Table1().Render())
	}
	if selected("table2") {
		section(flexsfp.Table2().Render())
	}
	if selected("table3") {
		section(flexsfp.Table3().Render())
	}
	if selected("power") {
		r, err := flexsfp.PowerExperiment(*seed)
		if err != nil {
			fail("power", err)
		}
		section(r.Render())
	}
	if selected("linerate") {
		r, err := flexsfp.LineRateExperiment(*seed)
		if err != nil {
			fail("linerate", err)
		}
		section(r.Render())
	}
	if selected("arch") {
		r, err := flexsfp.ArchitectureExperiment(*seed)
		if err != nil {
			fail("arch", err)
		}
		section(r.Render())
	}
	if selected("scale") {
		section(flexsfp.ScalabilityExperiment().Render())
	}
	if selected("gap") {
		r, err := flexsfp.AccelerationGapExperiment(*seed)
		if err != nil {
			fail("gap", err)
		}
		section(r.Render())
	}
	if selected("reliability") {
		section(flexsfp.ReliabilityExperiment(*seed).Render())
	}
	if selected("formfactor") {
		section(flexsfp.FormFactorExperiment().Render())
	}
	if selected("retrofit") {
		r, err := flexsfp.RetrofitEconomicsExperiment()
		if err != nil {
			fail("retrofit", err)
		}
		section(r.Render())
	}
	if selected("latency") {
		r, err := flexsfp.LatencyOverheadExperiment()
		if err != nil {
			fail("latency", err)
		}
		section(r.Render())
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "flexsfp-bench: no experiment matched -run=%s\n", *runList)
		os.Exit(2)
	}
}
