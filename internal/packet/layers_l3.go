package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPv4 is the IPv4 header.
type IPv4 struct {
	TOS        uint8
	Length     uint16 // total length; filled by FixLengths on serialize
	ID         uint16
	DontFrag   bool
	MoreFrags  bool
	FragOffset uint16 // in 8-byte units
	TTL        uint8
	Protocol   IPProtocol
	Checksum   uint16
	SrcIP      netip.Addr
	DstIP      netip.Addr
	Options    []byte // raw options, multiple of 4 bytes
	payload    []byte
}

// LayerType implements Layer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// DecodeFromBytes implements Layer.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return ErrTooShort
	}
	if data[0]>>4 != 4 {
		return fmt.Errorf("%w: IP version %d", ErrBadHeader, data[0]>>4)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 {
		return fmt.Errorf("%w: IHL %d < 20", ErrBadHeader, ihl)
	}
	if len(data) < ihl {
		return ErrTooShort
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	if int(ip.Length) < ihl {
		return fmt.Errorf("%w: total length %d < header length %d", ErrBadHeader, ip.Length, ihl)
	}
	if int(ip.Length) > len(data) {
		return ErrTruncated
	}
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.DontFrag = ff&0x4000 != 0
	ip.MoreFrags = ff&0x2000 != 0
	ip.FragOffset = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = IPProtocol(data[9])
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.SrcIP = netip.AddrFrom4([4]byte(data[12:16]))
	ip.DstIP = netip.AddrFrom4([4]byte(data[16:20]))
	ip.Options = data[20:ihl]
	ip.payload = data[ihl:ip.Length]
	return nil
}

// NextLayerType implements Layer. Non-first fragments are opaque.
func (ip *IPv4) NextLayerType() LayerType {
	if ip.FragOffset != 0 {
		return LayerTypePayload
	}
	return ip.Protocol.layerType()
}

func (p IPProtocol) layerType() LayerType {
	switch p {
	case IPProtocolTCP:
		return LayerTypeTCP
	case IPProtocolUDP:
		return LayerTypeUDP
	case IPProtocolICMPv4:
		return LayerTypeICMPv4
	case IPProtocolGRE:
		return LayerTypeGRE
	case IPProtocolIPv4:
		return LayerTypeIPv4
	case IPProtocolIPv6:
		return LayerTypeIPv6
	default:
		return LayerTypePayload
	}
}

// LayerPayload implements Layer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// HeaderLength returns the header length in bytes including options.
func (ip *IPv4) HeaderLength() int { return 20 + len(ip.Options) }

// VerifyChecksum recomputes the header checksum over hdr (the full IPv4
// header bytes) and reports whether it is consistent.
func VerifyIPv4Checksum(hdr []byte) bool {
	if len(hdr) < 20 {
		return false
	}
	ihl := int(hdr[0]&0x0f) * 4
	if ihl < 20 || len(hdr) < ihl {
		return false
	}
	return Checksum(hdr[:ihl]) == 0
}

// SerializeTo implements SerializableLayer.
func (ip *IPv4) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	if len(ip.Options)%4 != 0 {
		return fmt.Errorf("%w: IPv4 options length %d not multiple of 4", ErrBadHeader, len(ip.Options))
	}
	if !ip.SrcIP.Is4() || !ip.DstIP.Is4() {
		return fmt.Errorf("%w: IPv4 layer requires 4-byte addresses", ErrBadHeader)
	}
	hlen := 20 + len(ip.Options)
	payloadLen := b.Len()
	h := b.PrependBytes(hlen)
	h[0] = 0x40 | uint8(hlen/4)
	h[1] = ip.TOS
	if opts.FixLengths {
		ip.Length = uint16(hlen + payloadLen)
	}
	binary.BigEndian.PutUint16(h[2:4], ip.Length)
	binary.BigEndian.PutUint16(h[4:6], ip.ID)
	ff := ip.FragOffset & 0x1fff
	if ip.DontFrag {
		ff |= 0x4000
	}
	if ip.MoreFrags {
		ff |= 0x2000
	}
	binary.BigEndian.PutUint16(h[6:8], ff)
	h[8] = ip.TTL
	h[9] = uint8(ip.Protocol)
	h[10], h[11] = 0, 0
	s4 := ip.SrcIP.As4()
	d4 := ip.DstIP.As4()
	copy(h[12:16], s4[:])
	copy(h[16:20], d4[:])
	copy(h[20:], ip.Options)
	if opts.ComputeChecksums {
		ip.Checksum = Checksum(h[:hlen])
	}
	binary.BigEndian.PutUint16(h[10:12], ip.Checksum)
	return nil
}

// IPv6 is the fixed IPv6 header. Extension headers other than the common
// case of "none" are surfaced as opaque payload.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	Length       uint16 // payload length; filled by FixLengths
	NextHeader   IPProtocol
	HopLimit     uint8
	SrcIP        netip.Addr
	DstIP        netip.Addr
	payload      []byte
}

// LayerType implements Layer.
func (ip *IPv6) LayerType() LayerType { return LayerTypeIPv6 }

// DecodeFromBytes implements Layer.
func (ip *IPv6) DecodeFromBytes(data []byte) error {
	if len(data) < 40 {
		return ErrTooShort
	}
	if data[0]>>4 != 6 {
		return fmt.Errorf("%w: IP version %d", ErrBadHeader, data[0]>>4)
	}
	ip.TrafficClass = data[0]<<4 | data[1]>>4
	ip.FlowLabel = binary.BigEndian.Uint32(data[0:4]) & 0xfffff
	ip.Length = binary.BigEndian.Uint16(data[4:6])
	if int(ip.Length) > len(data)-40 {
		return ErrTruncated
	}
	ip.NextHeader = IPProtocol(data[6])
	ip.HopLimit = data[7]
	ip.SrcIP = netip.AddrFrom16([16]byte(data[8:24]))
	ip.DstIP = netip.AddrFrom16([16]byte(data[24:40]))
	ip.payload = data[40 : 40+int(ip.Length)]
	return nil
}

// NextLayerType implements Layer.
func (ip *IPv6) NextLayerType() LayerType { return ip.NextHeader.layerType() }

// LayerPayload implements Layer.
func (ip *IPv6) LayerPayload() []byte { return ip.payload }

// SerializeTo implements SerializableLayer.
func (ip *IPv6) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	if !ip.SrcIP.Is6() || ip.SrcIP.Is4In6() || !ip.DstIP.Is6() || ip.DstIP.Is4In6() {
		return fmt.Errorf("%w: IPv6 layer requires 16-byte addresses", ErrBadHeader)
	}
	payloadLen := b.Len()
	h := b.PrependBytes(40)
	binary.BigEndian.PutUint32(h[0:4], 6<<28|uint32(ip.TrafficClass)<<20|ip.FlowLabel&0xfffff)
	if opts.FixLengths {
		ip.Length = uint16(payloadLen)
	}
	binary.BigEndian.PutUint16(h[4:6], ip.Length)
	h[6] = uint8(ip.NextHeader)
	h[7] = ip.HopLimit
	s := ip.SrcIP.As16()
	d := ip.DstIP.As16()
	copy(h[8:24], s[:])
	copy(h[24:40], d[:])
	return nil
}
