package netsim

import (
	"testing"

	"flexsfp/internal/telemetry"
)

func TestLinkTelemetryTraceHops(t *testing.T) {
	sim := New(1)
	tr := telemetry.NewTracer(1, 64)
	var deliveredID uint64
	l := NewLink(sim, 10_000_000_000, 5*Microsecond, func(data []byte) {
		// The ambient register must carry the frame's trace ID across the
		// synchronous delivery chain.
		deliveredID = tr.Current()
	})
	l.SetTelemetry(tr, nil)

	id, _ := tr.Sample()
	tr.SetCurrent(id)
	if !l.Send(make([]byte, 64)) {
		t.Fatal("send refused")
	}
	tr.SetCurrent(0)
	sim.Run()

	if deliveredID != id {
		t.Fatalf("delivery saw trace ID %d, want %d", deliveredID, id)
	}
	if tr.Current() != 0 {
		t.Fatal("ambient trace ID leaked past delivery")
	}
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want tx+rx", len(evs))
	}
	if evs[0].Stage != telemetry.StageLinkTx || evs[1].Stage != telemetry.StageLinkRx {
		t.Fatalf("hop stages = %v, %v", evs[0].Stage, evs[1].Stage)
	}
	if evs[0].ID != id || evs[1].ID != id || evs[0].Len != 64 {
		t.Fatalf("hop fields wrong: %+v", evs)
	}
	if evs[1].TimeNs <= evs[0].TimeNs {
		t.Fatalf("delivery not after tx-done: %d vs %d", evs[1].TimeNs, evs[0].TimeNs)
	}
}

func TestLinkTelemetryQueueDepth(t *testing.T) {
	sim := New(1)
	reg := telemetry.New()
	depth := reg.Histogram("link.queue_depth", telemetry.LinearBuckets(0, 1, 8))
	l := NewLink(sim, 1_000_000_000, 0, func([]byte) {})
	l.SetTelemetry(nil, depth)
	for i := 0; i < 5; i++ {
		l.Send(make([]byte, 1518)) // same instant: frames queue behind the first
	}
	if depth.Count() != 5 {
		t.Fatalf("observed %d sends", depth.Count())
	}
	if depth.Max() != 4 {
		t.Fatalf("max queue depth = %d, want 4", depth.Max())
	}
	sim.Run()
}

func TestSimulatorAttachTelemetry(t *testing.T) {
	sim := New(1)
	reg := telemetry.New()
	sim.AttachTelemetry(reg, "sim")
	sim.Schedule(10, func() {})
	sim.Schedule(10, func() {}) // same timestamp: zero gap
	sim.Schedule(30, func() {})
	snap := reg.Snapshot()
	if v, ok := snap.Gauge("sim.pending_events"); !ok || v != 3 {
		t.Fatalf("pending_events = %v (ok=%v)", v, ok)
	}
	sim.Run()
	snap = reg.Snapshot()
	if v, _ := snap.Gauge("sim.fired_events"); v != 3 {
		t.Fatalf("fired_events = %v", v)
	}
	if v, _ := snap.Gauge("sim.now_ns"); v != 30 {
		t.Fatalf("now_ns = %v", v)
	}
	gap, ok := snap.Histogram("sim.event_gap_ns")
	if !ok || gap.Count != 3 {
		t.Fatalf("event_gap_ns = %+v (ok=%v)", gap, ok)
	}
	// Gaps: 10 (0→10), 0 (10→10), 20 (10→30).
	if gap.Min != 0 || gap.Max != 20 || gap.Sum != 30 {
		t.Fatalf("gap min/max/sum = %d/%d/%d", gap.Min, gap.Max, gap.Sum)
	}
}

// TestLinkSendTelemetryZeroAlloc pins the instrumented link hot path —
// trace capture, depth observation, tx/rx hops, ambient hand-off — at
// zero allocations once pools are warm.
func TestLinkSendTelemetryZeroAlloc(t *testing.T) {
	sim := New(1)
	reg := telemetry.New()
	tr := telemetry.NewTracer(1, 256)
	depth := reg.Histogram("link.queue_depth", telemetry.LinearBuckets(0, 1, 8))
	l := NewLink(sim, 10_000_000_000, Microsecond, func([]byte) {})
	l.SetTelemetry(tr, depth)
	frame := make([]byte, 64)
	for i := 0; i < 8; i++ {
		l.Send(frame)
		sim.Run()
	}
	if n := testing.AllocsPerRun(200, func() {
		id, _ := tr.Sample()
		tr.SetCurrent(id)
		if !l.Send(frame) {
			t.Fatal("send refused")
		}
		tr.SetCurrent(0)
		sim.Run()
	}); n != 0 {
		t.Fatalf("instrumented Link.Send allocates %v per run, want 0", n)
	}
}
