package ppe

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"flexsfp/internal/netsim"
)

// refModel is the executable specification the open-addressing store is
// cross-checked against: plain Go maps driven through the same API.
type refModel struct {
	size    int
	entries map[string][]byte
	hits    map[string]uint64
	gen     uint64
}

func newRefModel(size int) *refModel {
	return &refModel{size: size, entries: map[string][]byte{}, hits: map[string]uint64{}}
}

func (m *refModel) add(key, value []byte) bool {
	k := string(key)
	if _, ok := m.entries[k]; !ok && len(m.entries) >= m.size {
		return false
	}
	m.entries[k] = append([]byte(nil), value...)
	m.gen++
	return true
}

func (m *refModel) del(key []byte) bool {
	k := string(key)
	if _, ok := m.entries[k]; !ok {
		return false
	}
	delete(m.entries, k)
	delete(m.hits, k)
	m.gen++
	return true
}

func (m *refModel) lookup(key []byte) ([]byte, bool) {
	v, ok := m.entries[string(key)]
	if ok {
		m.hits[string(key)]++
	}
	return v, ok
}

// TestTableMatchesMapModel drives random Add/Delete/Lookup/Peek sequences
// through the open-addressing store and the map reference model in
// lockstep, verifying values, presence, entry counts, generation
// movement, full-table behavior, and per-entry hit counters via
// Snapshot.
func TestTableMatchesMapModel(t *testing.T) {
	for _, size := range []int{1, 2, 7, 32} {
		size := size
		t.Run(fmt.Sprintf("size=%d", size), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(42 + size)))
			tab := NewTable(TableSpec{Name: "model", Kind: TableExact, KeyBits: 32, ValueBits: 16, Size: size})
			ref := newRefModel(size)

			key := func() []byte {
				// A keyspace ~3x the capacity exercises full-table inserts,
				// misses, revivals, and tombstone churn.
				k := make([]byte, 4)
				k[3] = byte(rng.Intn(3*size + 2))
				return k
			}
			val := func() []byte {
				v := make([]byte, 2)
				rng.Read(v)
				return v
			}

			for op := 0; op < 4000; op++ {
				switch rng.Intn(4) {
				case 0: // Add
					k, v := key(), val()
					err := tab.Add(k, v)
					okRef := ref.add(k, v)
					if okRef != (err == nil) {
						t.Fatalf("op %d: Add(%x) err=%v, model ok=%v", op, k, err, okRef)
					}
					if err != nil && !errors.Is(err, ErrTableFull) {
						t.Fatalf("op %d: Add(%x) unexpected error class: %v", op, k, err)
					}
				case 1: // Delete
					k := key()
					err := tab.Delete(k)
					okRef := ref.del(k)
					if okRef != (err == nil) {
						t.Fatalf("op %d: Delete(%x) err=%v, model ok=%v", op, k, err, okRef)
					}
					if err != nil && !errors.Is(err, ErrNotFound) {
						t.Fatalf("op %d: Delete(%x) unexpected error class: %v", op, k, err)
					}
				case 2: // Lookup
					k := key()
					got, ok := tab.Lookup(k)
					want, okRef := ref.lookup(k)
					if ok != okRef || (ok && !bytes.Equal(got, want)) {
						t.Fatalf("op %d: Lookup(%x) = %x,%v; model %x,%v", op, k, got, ok, want, okRef)
					}
				case 3: // Peek
					k := key()
					got, ok := tab.Peek(k)
					want, okRef := ref.entries[string(k)]
					if ok != okRef || (ok && !bytes.Equal(got, want)) {
						t.Fatalf("op %d: Peek(%x) = %x,%v; model %x,%v", op, k, got, ok, want, okRef)
					}
				}
				if tab.Len() != len(ref.entries) {
					t.Fatalf("op %d: Len=%d, model %d", op, tab.Len(), len(ref.entries))
				}
				if tab.Generation() != ref.gen {
					t.Fatalf("op %d: Generation=%d, model %d", op, tab.Generation(), ref.gen)
				}
			}

			// Final deep equality, including per-entry hit counters.
			snap := tab.Snapshot()
			if len(snap) != len(ref.entries) {
				t.Fatalf("snapshot has %d entries, model %d", len(snap), len(ref.entries))
			}
			for _, e := range snap {
				want, ok := ref.entries[string(e.Key)]
				if !ok {
					t.Fatalf("snapshot key %x not in model", e.Key)
				}
				if !bytes.Equal(e.Value, want) {
					t.Fatalf("snapshot %x value %x, model %x", e.Key, e.Value, want)
				}
				if e.Hits != ref.hits[string(e.Key)] {
					t.Fatalf("snapshot %x hits %d, model %d", e.Key, e.Hits, ref.hits[string(e.Key)])
				}
			}
		})
	}
}

// TestTableFullAtExactlySpecSize pins the capacity edge: Spec.Size
// distinct keys fit, the next new key fails with ErrTableFull, replacing
// an existing key at capacity still works, and deleting one entry makes
// room for exactly one new key.
func TestTableFullAtExactlySpecSize(t *testing.T) {
	const size = 16
	tab := NewTable(TableSpec{Name: "edge", Kind: TableExact, KeyBits: 16, ValueBits: 8, Size: size})
	k := func(i int) []byte { return []byte{byte(i >> 8), byte(i)} }
	for i := 0; i < size; i++ {
		if err := tab.Add(k(i), []byte{byte(i)}); err != nil {
			t.Fatalf("Add #%d within capacity: %v", i, err)
		}
	}
	if err := tab.Add(k(size), []byte{0xff}); !errors.Is(err, ErrTableFull) {
		t.Fatalf("Add beyond capacity: got %v, want ErrTableFull", err)
	}
	if err := tab.Add(k(3), []byte{0xaa}); err != nil {
		t.Fatalf("replace at capacity: %v", err)
	}
	if v, ok := tab.Lookup(k(3)); !ok || v[0] != 0xaa {
		t.Fatalf("replaced value not visible: %x, %v", v, ok)
	}
	if err := tab.Delete(k(0)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add(k(size), []byte{0xff}); err != nil {
		t.Fatalf("Add into freed slot: %v", err)
	}
	if err := tab.Add(k(size+1), []byte{0xff}); !errors.Is(err, ErrTableFull) {
		t.Fatalf("table should be full again: got %v", err)
	}
	if tab.Len() != size {
		t.Fatalf("Len = %d, want %d", tab.Len(), size)
	}
}

// TestTableChurnForcesRebuild drives enough delete/insert churn through a
// small table that tombstones exceed the load limit and the bank is
// rebuilt, then verifies the surviving entries and their hit counters
// carried over.
func TestTableChurnForcesRebuild(t *testing.T) {
	const size = 8
	tab := NewTable(TableSpec{Name: "churn", Kind: TableExact, KeyBits: 16, ValueBits: 8, Size: size})
	k := func(i int) []byte { return []byte{byte(i >> 8), byte(i)} }
	// Keep one pinned entry and give it some hits.
	if err := tab.Add(k(9999), []byte{0x5a}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tab.Lookup(k(9999))
	}
	for round := 0; round < 200; round++ {
		key := k(round)
		if err := tab.Add(key, []byte{byte(round)}); err != nil {
			t.Fatalf("round %d add: %v", round, err)
		}
		if err := tab.Delete(key); err != nil {
			t.Fatalf("round %d delete: %v", round, err)
		}
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d after churn, want 1", tab.Len())
	}
	snap := tab.Snapshot()
	if len(snap) != 1 || !bytes.Equal(snap[0].Key, k(9999)) || snap[0].Hits != 3 {
		t.Fatalf("pinned entry lost through rebuilds: %+v", snap)
	}
	if v, ok := tab.Lookup(k(9999)); !ok || v[0] != 0x5a {
		t.Fatalf("pinned value wrong after rebuilds: %x, %v", v, ok)
	}
}

// TestTablePeekImmutableUnderReplace pins the shadow-bank value
// semantics: a slice returned by Peek/Lookup is an immutable published
// image that keeps its contents even after the entry is replaced or
// deleted.
func TestTablePeekImmutableUnderReplace(t *testing.T) {
	tab := NewTable(TableSpec{Name: "immutable", Kind: TableExact, KeyBits: 8, ValueBits: 32, Size: 4})
	key := []byte{7}
	if err := tab.Add(key, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	old, ok := tab.Peek(key)
	if !ok {
		t.Fatal("Peek missed")
	}
	if err := tab.Add(key, []byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old, []byte{1, 2, 3, 4}) {
		t.Fatalf("previously returned value mutated by replace: %x", old)
	}
	if err := tab.Delete(key); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old, []byte{1, 2, 3, 4}) {
		t.Fatalf("previously returned value mutated by delete: %x", old)
	}
}

// TestTableConcurrentReadersAndWriter is the race test for the lock-free
// datapath: one control-plane writer churns Add/Delete while reader
// goroutines hammer Lookup and Peek. Run under -race this validates the
// publication protocol; the assertions check reads are always coherent
// (a hit returns a complete value image of the right length).
func TestTableConcurrentReadersAndWriter(t *testing.T) {
	const size = 64
	tab := NewTable(TableSpec{Name: "race", Kind: TableExact, KeyBits: 16, ValueBits: 32, Size: size})
	k := func(i int) []byte { return []byte{byte(i >> 8), byte(i)} }
	v := func(i int) []byte { return []byte{byte(i), byte(i), byte(i), byte(i)} }

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := k(rng.Intn(size))
				if val, ok := tab.Lookup(key); ok {
					if len(val) != 4 || val[0] != val[3] {
						t.Errorf("torn read: %x", val)
						return
					}
				}
				if val, ok := tab.Peek(key); ok && (len(val) != 4 || val[0] != val[3]) {
					t.Errorf("torn peek: %x", val)
					return
				}
			}
		}(int64(r))
	}
	for i := 0; i < 20000; i++ {
		idx := i % size
		if err := tab.Add(k(idx), v(i)); err != nil {
			t.Errorf("add: %v", err)
			break
		}
		if i%3 == 0 {
			_ = tab.Delete(k(idx))
		}
	}
	close(stop)
	wg.Wait()
}

// TestTernaryConcurrentLookups races RLock readers against a writer; the
// atomic hit counters must keep the total exact.
func TestTernaryConcurrentLookups(t *testing.T) {
	tt := NewTernaryTable(TableSpec{Name: "acl", Kind: TableTernary, KeyBits: 8, Size: 16})
	if err := tt.Add(TernaryEntry{Value: []byte{0x10}, Mask: []byte{0xf0}, Priority: 1, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	const perReader = 5000
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perReader; i++ {
				if _, ok := tt.Lookup([]byte{0x15}); !ok {
					t.Error("lookup missed")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = tt.Add(TernaryEntry{Value: []byte{0x20}, Mask: []byte{0xff}, Priority: 0, Data: []byte{2}})
			tt.Clear()
			_ = tt.Add(TernaryEntry{Value: []byte{0x10}, Mask: []byte{0xf0}, Priority: 1, Data: []byte{1}})
		}
	}()
	wg.Wait()
	lookups, _ := tt.Stats()
	if lookups != 4*perReader {
		t.Fatalf("lookups = %d, want %d", lookups, 4*perReader)
	}
}

// TestTableLookupZeroAlloc pins the datapath allocation contract: hits
// and misses both run allocation-free.
func TestTableLookupZeroAlloc(t *testing.T) {
	tab := NewTable(TableSpec{Name: "alloc", Kind: TableExact, KeyBits: 32, ValueBits: 32, Size: 128})
	key := []byte{1, 2, 3, 4}
	if err := tab.Add(key, []byte{5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	miss := []byte{9, 9, 9, 9}
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := tab.Lookup(key); !ok {
			t.Fatal("hit expected")
		}
		if _, ok := tab.Lookup(miss); ok {
			t.Fatal("miss expected")
		}
	}); n != 0 {
		t.Fatalf("Table.Lookup allocates %v per run, want 0", n)
	}
}

// TestTernaryLookupZeroAlloc pins the TCAM read path too.
func TestTernaryLookupZeroAlloc(t *testing.T) {
	tt := NewTernaryTable(TableSpec{Name: "acl", Kind: TableTernary, KeyBits: 8, Size: 4})
	if err := tt.Add(TernaryEntry{Value: []byte{0x10}, Mask: []byte{0xf0}, Priority: 1, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	key := []byte{0x15}
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := tt.Lookup(key); !ok {
			t.Fatal("hit expected")
		}
	}); n != 0 {
		t.Fatalf("TernaryTable.Lookup allocates %v per run, want 0", n)
	}
}

// TestEngineSubmitZeroAlloc asserts the whole per-frame path — submit,
// cycle accounting, pooled completion, verdict delivery — settles to
// zero allocations once the pools are warm.
func TestEngineSubmitZeroAlloc(t *testing.T) {
	sim := netsim.New(1)
	e := NewEngine(sim, clock156, 64, nil)
	if err := e.SetProgram(passProgram()); err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 64)
	// Warm the completion pool and the simulator free list.
	for i := 0; i < 8; i++ {
		e.Submit(frame, DirEdgeToOptical)
		sim.Run()
	}
	if n := testing.AllocsPerRun(200, func() {
		if !e.Submit(frame, DirEdgeToOptical) {
			t.Fatal("submit refused")
		}
		sim.Run()
	}); n != 0 {
		t.Fatalf("Engine.Submit allocates %v per run, want 0", n)
	}
}

// TestEngineSubmitBurstZeroAlloc asserts the batched path is also
// allocation-free for a steady-state burst.
func TestEngineSubmitBurstZeroAlloc(t *testing.T) {
	sim := netsim.New(1)
	e := NewEngine(sim, clock156, 64, nil)
	if err := e.SetProgram(passProgram()); err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 64)
	burst := make([]Frame, 16)
	for i := range burst {
		burst[i] = Frame{Data: frame, Dir: DirEdgeToOptical}
	}
	for i := 0; i < 8; i++ {
		e.SubmitBurst(burst)
		sim.Run()
	}
	if n := testing.AllocsPerRun(200, func() {
		if got := e.SubmitBurst(burst); got != len(burst) {
			t.Fatalf("burst accepted %d of %d", got, len(burst))
		}
		sim.Run()
	}); n != 0 {
		t.Fatalf("Engine.SubmitBurst allocates %v per run, want 0", n)
	}
}

// TestEngineSubmitBurstMatchesSubmit pins burst semantics: SubmitBurst
// must be observationally identical to calling Submit per frame — same
// verdict order, same stats, same queue-drop accounting.
func TestEngineSubmitBurstMatchesSubmit(t *testing.T) {
	run := func(burst bool) (EngineStats, []uint64) {
		sim := netsim.New(1)
		var order []uint64
		e := NewEngine(sim, clock156, 64, func(v Verdict, ctx *Ctx) {
			order = append(order, uint64(ctx.Data[0]))
		})
		e.QueueLimit = 4
		if err := e.SetProgram(passProgram()); err != nil {
			t.Fatal(err)
		}
		frames := make([]Frame, 12)
		for i := range frames {
			data := make([]byte, 64)
			data[0] = byte(i)
			frames[i] = Frame{Data: data, Dir: DirEdgeToOptical}
		}
		if burst {
			e.SubmitBurst(frames)
		} else {
			for _, f := range frames {
				e.Submit(f.Data, f.Dir)
			}
		}
		sim.Run()
		return e.Stats(), order
	}
	sa, oa := run(false)
	sb, ob := run(true)
	if sa != sb {
		t.Fatalf("stats diverge: Submit %+v, SubmitBurst %+v", sa, sb)
	}
	if len(oa) != len(ob) {
		t.Fatalf("verdict counts diverge: %d vs %d", len(oa), len(ob))
	}
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("verdict order diverges at %d: %v vs %v", i, oa, ob)
		}
	}
}

// BenchmarkEngineSubmitBurst measures the batched hot path: one clock
// read per 16 frames.
func BenchmarkEngineSubmitBurst(b *testing.B) {
	sim := netsim.New(1)
	e := NewEngine(sim, 156_250_000, 64, nil)
	if err := e.SetProgram(&Program{
		Name:    "pass",
		Stages:  1,
		Handler: HandlerFunc(func(ctx *Ctx) Verdict { return VerdictPass }),
	}); err != nil {
		b.Fatal(err)
	}
	frame := make([]byte, 64)
	burst := make([]Frame, 16)
	for i := range burst {
		burst[i] = Frame{Data: frame, Dir: DirEdgeToOptical}
	}
	b.ReportAllocs()
	b.SetBytes(64 * int64(len(burst)))
	for i := 0; i < b.N; i++ {
		e.SubmitBurst(burst)
		sim.Run()
	}
}

// BenchmarkTableLookupPPE measures the bank read path in isolation with a
// realistic NAT-shaped table.
func BenchmarkTableLookupPPE(b *testing.B) {
	tab := NewTable(TableSpec{Name: "nat", Kind: TableExact, KeyBits: 32, ValueBits: 32, Size: 32768})
	keys := make([][]byte, 1024)
	for i := range keys {
		k := []byte{10, 0, byte(i >> 8), byte(i)}
		keys[i] = k
		if err := tab.Add(k, []byte{192, 0, byte(i >> 8), byte(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := tab.Lookup(keys[i%len(keys)]); !ok {
			b.Fatal("miss")
		}
	}
}
