package trafficgen

import (
	"fmt"
	"net/netip"

	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
)

// Profile names a mixed-protocol traffic blend. Where the base generator
// varies only flow tuples and sizes over one protocol, a profile emits
// the protocol diversity the edge actually carries — ARP, DHCP, DNS and
// TCP in realistic ratios — so the catalog apps (arpguard, dhcpsnoop,
// dnsblock, lb, …) see representative work in line-rate experiments.
type Profile string

const (
	// ProfileARPStorm is a broadcast storm: gratuitous ARP requests and
	// replies from many hosts with a trickle of background UDP.
	ProfileARPStorm Profile = "arp-storm"
	// ProfileDHCPChurn is a lease-churn wave: DISCOVER/REQUEST floods
	// from clients, OFFER/ACK replies, and RELEASEs.
	ProfileDHCPChurn Profile = "dhcp-churn"
	// ProfileDNSEdge is the subscriber edge: DNS queries dominate with
	// HTTPS and plain UDP alongside.
	ProfileDNSEdge Profile = "dns-edge"
	// ProfileElephantMice is the classic heavy-tail mix: a few full-size
	// TCP elephants carrying most bytes over many 64-byte TCP mice.
	ProfileElephantMice Profile = "elephant-mice"
)

// Profiles lists every defined profile in sweep order.
func Profiles() []Profile {
	return []Profile{ProfileARPStorm, ProfileDHCPChurn, ProfileDNSEdge, ProfileElephantMice}
}

// profile construction constants: template sets are a pure function of
// (profile, hosts) so generated traffic is deterministic by build order.
const profileDefaultHosts = 16

var (
	profGW     = packet.MAC{0x02, 0xfe, 0, 0, 0, 0x01}
	profServer = netip.AddrFrom4([4]byte{203, 0, 113, 10})
	profDNSSrv = netip.AddrFrom4([4]byte{203, 0, 113, 53})
)

func profHostMAC(h int) packet.MAC {
	return packet.MAC{0x02, 0xed, 0, 0, byte(h >> 8), byte(h)}
}

func profHostIP(h int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 7, byte(h >> 8), byte(h)})
}

// ProfileTemplates builds the weighted frame set for a profile over the
// given number of edge hosts (0 = default). The result is deterministic:
// same profile and host count, byte-identical templates.
func ProfileTemplates(p Profile, hosts int) ([]WeightedFrame, error) {
	if hosts <= 0 {
		hosts = profileDefaultHosts
	}
	switch p {
	case ProfileARPStorm:
		return arpStormTemplates(hosts)
	case ProfileDHCPChurn:
		return dhcpChurnTemplates(hosts)
	case ProfileDNSEdge:
		return dnsEdgeTemplates(hosts)
	case ProfileElephantMice:
		return elephantMiceTemplates(hosts)
	}
	return nil, fmt.Errorf("trafficgen: unknown profile %q", p)
}

func arpStormTemplates(hosts int) ([]WeightedFrame, error) {
	var out []WeightedFrame
	for h := 0; h < hosts; h++ {
		mac, ip := profHostMAC(h), profHostIP(h)
		// Gratuitous announcement (the storm body).
		req, err := packet.BuildARP(packet.ARPSpec{
			SrcMAC: mac, SenderIP: ip, TargetIP: ip, PadTo: 64,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, WeightedFrame{Frame: req, Weight: 6})
		// Directed reply toward the gateway.
		rep, err := packet.BuildARP(packet.ARPSpec{
			SrcMAC: mac, DstMAC: profGW, Operation: packet.ARPReply,
			SenderIP: ip, TargetMAC: profGW, TargetIP: netip.AddrFrom4([4]byte{10, 7, 0, 254}),
			PadTo: 64,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, WeightedFrame{Frame: rep, Weight: 2})
	}
	// Background UDP so parsers see non-ARP interleaved.
	bg, err := packet.Build(packet.Spec{
		SrcMAC: profHostMAC(0), DstMAC: profGW,
		SrcIP: profHostIP(0), DstIP: profServer,
		SrcPort: 40000, DstPort: 80, PadTo: 128,
	})
	if err != nil {
		return nil, err
	}
	return append(out, WeightedFrame{Frame: bg, Weight: hosts}), nil
}

func dhcpChurnTemplates(hosts int) ([]WeightedFrame, error) {
	zero := netip.AddrFrom4([4]byte{0, 0, 0, 0})
	bcast := netip.AddrFrom4([4]byte{255, 255, 255, 255})
	server := netip.AddrFrom4([4]byte{10, 7, 0, 254})

	clientMsg := func(h int, mt packet.DHCPMsgType, ciaddr netip.Addr) ([]byte, error) {
		msg := packet.DHCPv4{
			Op: packet.DHCPOpRequest, XID: uint32(0x10000 + h), ClientMAC: profHostMAC(h),
			ClientIP: ciaddr,
			Options:  []packet.DHCPOption{{Code: packet.DHCPOptMsgType, Data: []byte{byte(mt)}}},
		}
		pl, err := msg.Marshal()
		if err != nil {
			return nil, err
		}
		return packet.Build(packet.Spec{
			SrcMAC: profHostMAC(h), DstMAC: packet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
			SrcIP: zero, DstIP: bcast,
			SrcPort: packet.PortDHCPClient, DstPort: packet.PortDHCPServer,
			Payload: pl,
		})
	}
	serverMsg := func(h int, mt packet.DHCPMsgType) ([]byte, error) {
		msg := packet.DHCPv4{
			Op: packet.DHCPOpReply, XID: uint32(0x10000 + h), ClientMAC: profHostMAC(h),
			YourIP: profHostIP(h), ServerIP: server,
			Options: []packet.DHCPOption{{Code: packet.DHCPOptMsgType, Data: []byte{byte(mt)}}},
		}
		pl, err := msg.Marshal()
		if err != nil {
			return nil, err
		}
		return packet.Build(packet.Spec{
			SrcMAC: profGW, DstMAC: profHostMAC(h),
			SrcIP: server, DstIP: profHostIP(h),
			SrcPort: packet.PortDHCPServer, DstPort: packet.PortDHCPClient,
			Payload: pl,
		})
	}

	var out []WeightedFrame
	for h := 0; h < hosts; h++ {
		steps := []struct {
			build  func() ([]byte, error)
			weight int
		}{
			{func() ([]byte, error) { return clientMsg(h, packet.DHCPDiscover, zero) }, 3},
			{func() ([]byte, error) { return serverMsg(h, packet.DHCPOffer) }, 2},
			{func() ([]byte, error) { return clientMsg(h, packet.DHCPRequest, zero) }, 3},
			{func() ([]byte, error) { return serverMsg(h, packet.DHCPAck) }, 2},
			{func() ([]byte, error) { return clientMsg(h, packet.DHCPRelease, profHostIP(h)) }, 1},
		}
		for _, s := range steps {
			f, err := s.build()
			if err != nil {
				return nil, err
			}
			out = append(out, WeightedFrame{Frame: f, Weight: s.weight})
		}
	}
	return out, nil
}

func dnsEdgeTemplates(hosts int) ([]WeightedFrame, error) {
	names := []string{
		"cdn.example", "www.example", "api.example",
		"ads.example", "tracker.ads.example", "mail.example",
	}
	var out []WeightedFrame
	for h := 0; h < hosts; h++ {
		name := names[h%len(names)]
		q := packet.DNS{ID: uint16(0x4000 + h), RD: true,
			Questions: []packet.DNSQuestion{{Name: name, Type: packet.DNSTypeA, Class: packet.DNSClassIN}}}
		buf := packet.NewSerializeBuffer()
		if err := q.SerializeTo(buf, packet.SerializeOptions{}); err != nil {
			return nil, err
		}
		pl := make([]byte, buf.Len())
		copy(pl, buf.Bytes())
		query, err := packet.Build(packet.Spec{
			SrcMAC: profHostMAC(h), DstMAC: profGW,
			SrcIP: profHostIP(h), DstIP: profDNSSrv,
			SrcPort: uint16(10000 + h), DstPort: packet.PortDNS,
			Payload: pl,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, WeightedFrame{Frame: query, Weight: 6})

		https, err := packet.Build(packet.Spec{
			SrcMAC: profHostMAC(h), DstMAC: profGW,
			SrcIP: profHostIP(h), DstIP: profServer,
			Proto: packet.IPProtocolTCP, SrcPort: uint16(20000 + h), DstPort: packet.PortHTTPS,
			PadTo: 594,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, WeightedFrame{Frame: https, Weight: 3})

		quic, err := packet.Build(packet.Spec{
			SrcMAC: profHostMAC(h), DstMAC: profGW,
			SrcIP: profHostIP(h), DstIP: profServer,
			SrcPort: uint16(30000 + h), DstPort: packet.PortHTTPS,
			PadTo: 1280,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, WeightedFrame{Frame: quic, Weight: 1})
	}
	return out, nil
}

func elephantMiceTemplates(hosts int) ([]WeightedFrame, error) {
	var out []WeightedFrame
	elephants := hosts / 8
	if elephants < 1 {
		elephants = 1
	}
	for e := 0; e < elephants; e++ {
		f, err := packet.Build(packet.Spec{
			SrcMAC: profHostMAC(e), DstMAC: profGW,
			SrcIP: profHostIP(e), DstIP: profServer,
			Proto: packet.IPProtocolTCP, SrcPort: uint16(50000 + e), DstPort: packet.PortHTTPS,
			PadTo: 1518,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, WeightedFrame{Frame: f, Weight: 6})
	}
	for h := 0; h < hosts; h++ {
		f, err := packet.Build(packet.Spec{
			SrcMAC: profHostMAC(h), DstMAC: profGW,
			SrcIP: profHostIP(h), DstIP: profServer,
			Proto: packet.IPProtocolTCP, SYN: true,
			SrcPort: uint16(60000 + h), DstPort: 80,
			PadTo: 64,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, WeightedFrame{Frame: f, Weight: 1})
	}
	return out, nil
}

// NewProfile builds a generator emitting the named profile's blend. The
// Templates field of cfg is filled in; Sizes/Flows/ZipfS are ignored in
// template mode.
func NewProfile(sim *netsim.Simulator, p Profile, hosts int, cfg Config, sink func([]byte) bool) (*Generator, error) {
	tmpl, err := ProfileTemplates(p, hosts)
	if err != nil {
		return nil, err
	}
	cfg.Templates = tmpl
	return New(sim, cfg, sink), nil
}
