package exp

import (
	"math/rand"

	"flexsfp/internal/runner"
)

// Trials holds the per-trial results of the generic multi-trial driver,
// in trial order.
type Trials[T any] struct {
	Results []T
}

// RunTrials is the generic multi-trial driver every stochastic
// experiment shares: it runs fn once per trial on the runner's bounded
// deterministic pool, with trial t's seed derived as ctx.TrialSeed(t).
// The result slice is merged in trial order, so the reduction — and
// therefore the experiment — is bit-identical for any parallelism.
func RunTrials[T any](ctx RunContext, fn func(trial int, seed int64) (T, error)) (Trials[T], error) {
	n := ctx.EffectiveTrials()
	results, err := runner.Map(n,
		runner.Options{Seed: ctx.Seed, Parallelism: ctx.Parallelism},
		func(trial int, _ *rand.Rand) (T, error) {
			return fn(trial, ctx.TrialSeed(trial))
		})
	if err != nil {
		return Trials[T]{}, err
	}
	return Trials[T]{Results: results}, nil
}

// N is the number of trials that ran.
func (t Trials[T]) N() int { return len(t.Results) }

// First returns the first trial's result (every driver run has at least
// one trial, so this is safe after a nil-error RunTrials).
func (t Trials[T]) First() T { return t.Results[0] }

// Metric extracts one scalar per trial through f and reduces it with
// the shared CI math (sample mean, Bessel-corrected stddev, and a
// normal-approximation 95% interval — runner.Summary).
func (t Trials[T]) Metric(f func(T) float64) runner.Summary {
	return runner.Collect(t.Results, f)
}

// All reports whether pred holds for every trial (e.g. "line rate was
// sustained in every trial").
func (t Trials[T]) All(pred func(T) bool) bool {
	for _, r := range t.Results {
		if !pred(r) {
			return false
		}
	}
	return true
}
