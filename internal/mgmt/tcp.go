package mgmt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The out-of-band transport frames protocol messages over a TCP stream
// with a 4-byte big-endian length prefix.

const maxFrame = MaxBody + 64

func writeFrame(w io.Writer, msg []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("mgmt: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Server serves an agent's Handle function over TCP (the out-of-band
// management port of §4.1).
type Server struct {
	handler func([]byte) []byte

	// ReadTimeout bounds how long a connection may sit idle or trickle
	// bytes mid-frame before the serving goroutine gives up and closes
	// it; 0 means no deadline. Set before Listen.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write; a peer that stops
	// draining its socket cannot wedge the goroutine. 0 = no deadline.
	WriteTimeout time.Duration

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	done  chan struct{}
}

// NewServer wraps a message handler (normally Agent.Handle).
func NewServer(handler func([]byte) []byte) *Server {
	return &Server{
		handler: handler,
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
}

// Listen starts accepting on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the bound address. Serving happens on background
// goroutines until Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		if s.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
		}
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		resp := s.handler(req)
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
		s.ln = nil
	}
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[net.Conn]struct{}{}
	return err
}

// TCPTransport is a client-side Transport over one TCP connection.
// Requests are serialized: one in flight at a time. Any I/O error closes
// the connection (a half-finished exchange would desynchronize framing);
// the next Do redials transparently, so a retrying Client recovers from
// drops without help.
type TCPTransport struct {
	mu      sync.Mutex
	conn    net.Conn
	addr    string
	timeout time.Duration
	closed  bool
}

// Dial connects to a module's management address.
func Dial(addr string) (*TCPTransport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPTransport{conn: conn, addr: addr}, nil
}

// SetTimeout installs a per-request deadline covering the write and the
// response read; 0 disables it.
func (t *TCPTransport) SetTimeout(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.timeout = d
}

// Do implements Transport.
func (t *TCPTransport) Do(req []byte) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn == nil {
		if t.closed || t.addr == "" {
			return nil, errors.New("mgmt: transport closed")
		}
		conn, err := net.Dial("tcp", t.addr)
		if err != nil {
			return nil, err
		}
		t.conn = conn
	}
	if t.timeout > 0 {
		t.conn.SetDeadline(time.Now().Add(t.timeout))
	}
	if err := writeFrame(t.conn, req); err != nil {
		t.dropConnLocked()
		return nil, err
	}
	resp, err := readFrame(t.conn)
	if err != nil {
		t.dropConnLocked()
		return nil, err
	}
	return resp, nil
}

func (t *TCPTransport) dropConnLocked() {
	if t.conn != nil {
		t.conn.Close()
		t.conn = nil
	}
}

// Close closes the connection and disables redialing.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	if t.conn == nil {
		return nil
	}
	err := t.conn.Close()
	t.conn = nil
	return err
}
