// Package apps implements the paper's use-case catalog (§3) against the
// PPE programming model: the §5.1 NAT case study, per-port firewalling,
// VLAN/QinQ tagging, GRE/VXLAN/IP-in-IP tunneling, Katran-style L4 load
// balancing, INT-style in-band telemetry, NetFlow-like flow accounting,
// per-source rate limiting, DNS/DoH filtering, and packet sanitization.
//
// Each application is a core.App: a declarative ppe.Program (from which
// the HLS estimator prices the design) plus a behavioral handler that
// mutates raw frames in place, the way the synthesized pipeline would.
package apps

import (
	"encoding/binary"

	"flexsfp/internal/core"
	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// view holds the header offsets of a frame, computed by a single linear
// scan — the software analogue of the hardware parser.
type view struct {
	data []byte

	l3Off   int // start of IPv4/IPv6 header (after VLAN tags)
	vlanEnd int // byte after the last VLAN tag (== l3Off when tagged)
	nVLAN   int

	isIPv4 bool
	isIPv6 bool
	proto  packet.IPProtocol
	l4Off  int // start of TCP/UDP/ICMP header; 0 if absent/fragment

	srcPort, dstPort uint16 // 0 for port-less protocols
}

// parse fills the view. It returns false for frames too short to carry
// Ethernet.
func (v *view) parse(data []byte) bool {
	*v = view{data: data}
	if len(data) < 14 {
		return false
	}
	et := packet.EtherType(binary.BigEndian.Uint16(data[12:14]))
	off := 14
	for (et == packet.EtherTypeDot1Q || et == packet.EtherTypeQinQ) && v.nVLAN < 4 {
		if len(data) < off+4 {
			return false
		}
		et = packet.EtherType(binary.BigEndian.Uint16(data[off+2 : off+4]))
		off += 4
		v.nVLAN++
	}
	v.vlanEnd = off
	v.l3Off = off
	switch et {
	case packet.EtherTypeIPv4:
		return v.parseIPv4(off)
	case packet.EtherTypeIPv6:
		return v.parseIPv6(off)
	default:
		return true // L2-only frame: valid, no L3 view
	}
}

func (v *view) parseIPv4(off int) bool {
	d := v.data
	if len(d) < off+20 || d[off]>>4 != 4 {
		return false
	}
	ihl := int(d[off]&0x0f) * 4
	if ihl < 20 || len(d) < off+ihl {
		return false
	}
	v.isIPv4 = true
	v.proto = packet.IPProtocol(d[off+9])
	fragOff := binary.BigEndian.Uint16(d[off+6:off+8]) & 0x1fff
	if fragOff == 0 {
		v.l4Off = off + ihl
		v.parsePorts()
	}
	return true
}

func (v *view) parseIPv6(off int) bool {
	d := v.data
	if len(d) < off+40 || d[off]>>4 != 6 {
		return false
	}
	v.isIPv6 = true
	v.proto = packet.IPProtocol(d[off+6])
	v.l4Off = off + 40
	v.parsePorts()
	return true
}

func (v *view) parsePorts() {
	d := v.data
	switch v.proto {
	case packet.IPProtocolTCP, packet.IPProtocolUDP:
		if len(d) >= v.l4Off+4 {
			v.srcPort = binary.BigEndian.Uint16(d[v.l4Off:])
			v.dstPort = binary.BigEndian.Uint16(d[v.l4Off+2:])
		} else {
			v.l4Off = 0
		}
	}
}

// srcIPv4 / dstIPv4 return address slices (valid only when isIPv4).
func (v *view) srcIPv4() []byte { return v.data[v.l3Off+12 : v.l3Off+16] }
func (v *view) dstIPv4() []byte { return v.data[v.l3Off+16 : v.l3Off+20] }

// ipv4HeaderLen returns the IPv4 header length in bytes.
func (v *view) ipv4HeaderLen() int { return int(v.data[v.l3Off]&0x0f) * 4 }

// Incremental checksum update per RFC 1624: HC' = ~(~HC + ~m + m').

// csumUpdate16 folds the replacement of old16 by new16 into the checksum
// stored at data[at:at+2] (stored as the complement, per the Internet
// checksum convention). A stored checksum of 0 (UDP "no checksum") is
// left alone.
func csumUpdate16(data []byte, at int, old16, new16 uint16) {
	stored := binary.BigEndian.Uint16(data[at:])
	if stored == 0 {
		return
	}
	sum := uint32(^stored) + uint32(^old16) + uint32(new16)
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	binary.BigEndian.PutUint16(data[at:], ^uint16(sum))
}

// csumUpdate32 folds a 4-byte field replacement into a checksum.
func csumUpdate32(data []byte, at int, old4, new4 []byte) {
	csumUpdate16(data, at, binary.BigEndian.Uint16(old4[0:2]), binary.BigEndian.Uint16(new4[0:2]))
	csumUpdate16(data, at, binary.BigEndian.Uint16(old4[2:4]), binary.BigEndian.Uint16(new4[2:4]))
}

// l4ChecksumOffset returns the absolute offset of the L4 checksum field,
// or -1 when the protocol has none we patch.
func (v *view) l4ChecksumOffset() int {
	if v.l4Off == 0 {
		return -1
	}
	switch v.proto {
	case packet.IPProtocolTCP:
		if len(v.data) >= v.l4Off+18 {
			return v.l4Off + 16
		}
	case packet.IPProtocolUDP:
		if len(v.data) >= v.l4Off+8 {
			return v.l4Off + 6
		}
	}
	return -1
}

// rewriteIPv4Addr replaces the 4-byte address at addrOff, fixing the IPv4
// header checksum and the L4 pseudo-header checksum.
func (v *view) rewriteIPv4Addr(addrOff int, newAddr []byte) {
	var old [4]byte // stack copy: this runs once per translated packet
	copy(old[:], v.data[addrOff:addrOff+4])
	copy(v.data[addrOff:addrOff+4], newAddr)
	csumUpdate32(v.data, v.l3Off+10, old[:], newAddr)
	if at := v.l4ChecksumOffset(); at >= 0 {
		csumUpdate32(v.data, at, old[:], newAddr)
	}
}

// fnv64 hashes b with FNV-1a (the software stand-in for the PPE's hash
// unit).
func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// fiveTupleKey packs the 104-bit (13-byte) 5-tuple match key used by the
// ACL, LB and flow-accounting tables: srcIP(4) dstIP(4) sport(2) dport(2)
// proto(1). IPv6 flows fold their addresses to 32 bits by hashing, which
// is what a key-width-limited pipeline does.
func (v *view) fiveTupleKey(buf []byte) []byte {
	// Direct stores at fixed offsets — the key register a real pipeline
	// latches field by field, with no intermediate slices.
	key := buf[:13]
	switch {
	case v.isIPv4:
		copy(key[0:4], v.srcIPv4())
		copy(key[4:8], v.dstIPv4())
	case v.isIPv6:
		s := fnv64(v.data[v.l3Off+8 : v.l3Off+24])
		d := fnv64(v.data[v.l3Off+24 : v.l3Off+40])
		binary.BigEndian.PutUint32(key[0:4], uint32(s))
		binary.BigEndian.PutUint32(key[4:8], uint32(d))
	default:
		for i := 0; i < 8; i++ {
			key[i] = 0
		}
	}
	binary.BigEndian.PutUint16(key[8:10], v.srcPort)
	binary.BigEndian.PutUint16(key[10:12], v.dstPort)
	key[12] = byte(v.proto)
	return key
}

// FiveTupleKeyBits is the ACL/LB/flow key width.
const FiveTupleKeyBits = 104

// dirEnabled reports whether a packet traveling d should be processed
// under an app's configured direction filter ("both" by default).
func dirEnabled(cfg string, d ppe.Direction) bool {
	switch cfg {
	case "edge-to-optical":
		return d == ppe.DirEdgeToOptical
	case "optical-to-edge":
		return d == ppe.DirOpticalToEdge
	default:
		return true
	}
}

// All apps implement core.App.
var _ core.App = (*natApp)(nil)
