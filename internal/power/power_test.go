package power

import (
	"math"
	"testing"

	"flexsfp/internal/netsim"
)

func TestMeasureUnbiased(t *testing.T) {
	sim := netsim.New(42)
	tb := NewTestbed(sim)
	m := tb.Measure(0.893, 1000)
	if math.Abs(m.MeanW-(NICBaselineW+0.893)) > 0.002 {
		t.Errorf("mean = %.4f, want ≈%.4f", m.MeanW, NICBaselineW+0.893)
	}
	if m.StddevW > 3*SensorNoiseW || m.StddevW == 0 {
		t.Errorf("stddev = %.4f", m.StddevW)
	}
	if m.Samples != 1000 {
		t.Errorf("samples = %d", m.Samples)
	}
}

func TestMeasureDefaultSamples(t *testing.T) {
	sim := netsim.New(1)
	tb := NewTestbed(sim)
	if m := tb.Measure(1, 0); m.Samples != 100 {
		t.Errorf("default samples = %d", m.Samples)
	}
}

func TestRunReproducesPaperNumbers(t *testing.T) {
	sim := netsim.New(7)
	tb := NewTestbed(sim)
	// Module draws as calibrated in core: SFP 0.893 W, FlexSFP 1.520 W.
	r := tb.Run(0.893, 1.520, 500)
	check := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 0.005 {
			t.Errorf("%s = %.3f W, want %.3f", name, got, want)
		}
	}
	check("NIC only", r.NICOnly.MeanW, 3.800)
	check("NIC+SFP", r.WithSFP.MeanW, 4.693)
	check("NIC+FlexSFP", r.WithFlex.MeanW, 5.320)
	check("SFP delta", r.DeltaSFP, 0.893)
	check("FlexSFP delta", r.DeltaFlex, 1.520)
	check("Flex over SFP", r.FlexOverSFP, 0.627)
	// Paper's qualitative deltas: ~.9 W, ~.7 W increase, ~1.5 W total.
	if r.DeltaSFP < 0.85 || r.DeltaSFP > 0.95 {
		t.Errorf("SFP draw %v outside ~0.9 W", r.DeltaSFP)
	}
	if r.FlexOverSFP < 0.6 || r.FlexOverSFP > 0.8 {
		t.Errorf("Flex increase %v outside ~0.7 W", r.FlexOverSFP)
	}
	if r.DeltaFlex < 1.4 || r.DeltaFlex > 1.6 {
		t.Errorf("Flex total %v outside ~1.5 W", r.DeltaFlex)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := NewTestbed(netsim.New(3)).Run(0.893, 1.52, 200)
	b := NewTestbed(netsim.New(3)).Run(0.893, 1.52, 200)
	if a != b {
		t.Error("same seed produced different reports")
	}
}
