package telemetry

import "testing"

// The record-path contract: Counter.Add, Gauge.Set, Histogram.Observe,
// Tracer.Sample/SetCurrent/Hop never allocate. These pins are the
// regression wall for the whole instrumented datapath — if any of them
// starts allocating, every hot loop that records into it does too.

func TestCounterAddZeroAlloc(t *testing.T) {
	r := New()
	c := r.Counter("c")
	if n := testing.AllocsPerRun(200, func() {
		c.Add(3)
		c.Inc()
	}); n != 0 {
		t.Fatalf("Counter.Add allocates %v allocs/op", n)
	}
}

func TestGaugeSetZeroAlloc(t *testing.T) {
	r := New()
	g := r.Gauge("g")
	v := 0.0
	if n := testing.AllocsPerRun(200, func() {
		g.Set(v)
		g.SetInt(int64(v))
		v++
	}); n != 0 {
		t.Fatalf("Gauge.Set allocates %v allocs/op", n)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	r := New()
	h := r.Histogram("h", ExpBuckets(64, 2, 16))
	v := uint64(0)
	if n := testing.AllocsPerRun(200, func() {
		h.Observe(v)
		v += 977 // walk across buckets, min/max CAS paths included
	}); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v allocs/op", n)
	}
}

func TestTracerRecordZeroAlloc(t *testing.T) {
	tr := NewTracer(2, 64)
	if n := testing.AllocsPerRun(200, func() {
		id, ok := tr.Sample()
		if ok {
			tr.SetCurrent(id)
			tr.Hop(id, StageGen, 100, 64, 0)
			tr.Hop(id, StageVerdict, 200, 64, 1)
			tr.SetCurrent(0)
		}
	}); n != 0 {
		t.Fatalf("Tracer record path allocates %v allocs/op", n)
	}
}
