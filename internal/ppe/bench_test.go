package ppe

import (
	"testing"

	"flexsfp/internal/netsim"
)

// BenchmarkEngineSubmit measures the engine hot path in isolation:
// submit → cycle accounting → scheduled verdict → handler, one frame in
// flight at a time.
func BenchmarkEngineSubmit(b *testing.B) {
	sim := netsim.New(1)
	e := NewEngine(sim, 156_250_000, 64, nil)
	if err := e.SetProgram(&Program{
		Name:    "pass",
		Stages:  1,
		Handler: HandlerFunc(func(ctx *Ctx) Verdict { return VerdictPass }),
	}); err != nil {
		b.Fatal(err)
	}
	frame := make([]byte, 64)
	b.ReportAllocs()
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		e.Submit(frame, DirEdgeToOptical)
		sim.Run()
	}
}

// BenchmarkEngineSubmitQueued measures the queued path: a burst fills the
// input queue so each Submit also schedules a queue-release event.
func BenchmarkEngineSubmitQueued(b *testing.B) {
	sim := netsim.New(1)
	e := NewEngine(sim, 156_250_000, 64, nil)
	if err := e.SetProgram(&Program{
		Name:    "pass",
		Stages:  1,
		Handler: HandlerFunc(func(ctx *Ctx) Verdict { return VerdictPass }),
	}); err != nil {
		b.Fatal(err)
	}
	frame := make([]byte, 64)
	b.ReportAllocs()
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		e.Submit(frame, DirEdgeToOptical)
		e.Submit(frame, DirEdgeToOptical)
		sim.Run()
	}
}
