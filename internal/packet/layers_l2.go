package packet

import (
	"encoding/binary"
	"fmt"
	"net"
	"net/netip"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// ParseMAC parses a textual MAC address ("aa:bb:cc:dd:ee:ff").
func ParseMAC(s string) (MAC, error) {
	var m MAC
	hw, err := net.ParseMAC(s)
	if err != nil {
		return m, err
	}
	if len(hw) != 6 {
		return m, fmt.Errorf("packet: MAC %q is not 48 bits", s)
	}
	copy(m[:], hw)
	return m, nil
}

// MustMAC is ParseMAC that panics on error; for tests and literals.
func MustMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

func (m MAC) String() string {
	return net.HardwareAddr(m[:]).String()
}

// IsBroadcast reports whether m is ff:ff:ff:ff:ff:ff.
func (m MAC) IsBroadcast() bool {
	return m == MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// IsMulticast reports whether the group bit is set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// Ethernet is the 14-byte Ethernet II header.
type Ethernet struct {
	DstMAC    MAC
	SrcMAC    MAC
	EtherType EtherType
	payload   []byte
}

// LayerType implements Layer.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// DecodeFromBytes implements Layer.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < 14 {
		return ErrTooShort
	}
	copy(e.DstMAC[:], data[0:6])
	copy(e.SrcMAC[:], data[6:12])
	e.EtherType = EtherType(binary.BigEndian.Uint16(data[12:14]))
	e.payload = data[14:]
	return nil
}

// NextLayerType implements Layer.
func (e *Ethernet) NextLayerType() LayerType { return e.EtherType.layerType() }

func (t EtherType) layerType() LayerType {
	switch t {
	case EtherTypeIPv4:
		return LayerTypeIPv4
	case EtherTypeIPv6:
		return LayerTypeIPv6
	case EtherTypeARP:
		return LayerTypeARP
	case EtherTypeDot1Q, EtherTypeQinQ:
		return LayerTypeDot1Q
	case EtherTypeMPLSUnicast:
		return LayerTypeMPLS
	case EtherTypeINT:
		return LayerTypeINT
	default:
		return LayerTypePayload
	}
}

// LayerPayload implements Layer.
func (e *Ethernet) LayerPayload() []byte { return e.payload }

// SerializeTo implements SerializableLayer.
func (e *Ethernet) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	h := b.PrependBytes(14)
	copy(h[0:6], e.DstMAC[:])
	copy(h[6:12], e.SrcMAC[:])
	binary.BigEndian.PutUint16(h[12:14], uint16(e.EtherType))
	return nil
}

// Dot1Q is an 802.1Q VLAN tag. Stacked tags (QinQ, outer EtherType 0x88A8)
// decode as consecutive Dot1Q layers.
type Dot1Q struct {
	Priority     uint8 // PCP, 3 bits
	DropEligible bool  // DEI
	VLAN         uint16
	EtherType    EtherType // type of what the tag encapsulates
	payload      []byte
}

// LayerType implements Layer.
func (d *Dot1Q) LayerType() LayerType { return LayerTypeDot1Q }

// DecodeFromBytes implements Layer.
func (d *Dot1Q) DecodeFromBytes(data []byte) error {
	if len(data) < 4 {
		return ErrTooShort
	}
	tci := binary.BigEndian.Uint16(data[0:2])
	d.Priority = uint8(tci >> 13)
	d.DropEligible = tci&0x1000 != 0
	d.VLAN = tci & 0x0fff
	d.EtherType = EtherType(binary.BigEndian.Uint16(data[2:4]))
	d.payload = data[4:]
	return nil
}

// NextLayerType implements Layer.
func (d *Dot1Q) NextLayerType() LayerType { return d.EtherType.layerType() }

// LayerPayload implements Layer.
func (d *Dot1Q) LayerPayload() []byte { return d.payload }

// SerializeTo implements SerializableLayer. It writes only the 4-byte tag
// body (TCI + inner EtherType); the enclosing layer's EtherType must be
// set to Dot1Q or QinQ by the caller.
func (d *Dot1Q) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	if d.VLAN > 0x0fff {
		return fmt.Errorf("%w: VLAN ID %d out of range", ErrBadHeader, d.VLAN)
	}
	h := b.PrependBytes(4)
	tci := uint16(d.Priority)<<13 | d.VLAN
	if d.DropEligible {
		tci |= 0x1000
	}
	binary.BigEndian.PutUint16(h[0:2], tci)
	binary.BigEndian.PutUint16(h[2:4], uint16(d.EtherType))
	return nil
}

// MPLS is a single MPLS label stack entry.
type MPLS struct {
	Label       uint32 // 20 bits
	TC          uint8  // traffic class, 3 bits
	BottomStack bool
	TTL         uint8
	payload     []byte
}

// LayerType implements Layer.
func (m *MPLS) LayerType() LayerType { return LayerTypeMPLS }

// DecodeFromBytes implements Layer.
func (m *MPLS) DecodeFromBytes(data []byte) error {
	if len(data) < 4 {
		return ErrTooShort
	}
	v := binary.BigEndian.Uint32(data[0:4])
	m.Label = v >> 12
	m.TC = uint8(v>>9) & 0x7
	m.BottomStack = v&0x100 != 0
	m.TTL = uint8(v)
	m.payload = data[4:]
	return nil
}

// NextLayerType implements Layer. After the bottom of stack the payload's
// first nibble discriminates IPv4 from IPv6, per common practice.
func (m *MPLS) NextLayerType() LayerType {
	if !m.BottomStack {
		return LayerTypeMPLS
	}
	if len(m.payload) > 0 {
		switch m.payload[0] >> 4 {
		case 4:
			return LayerTypeIPv4
		case 6:
			return LayerTypeIPv6
		}
	}
	return LayerTypePayload
}

// LayerPayload implements Layer.
func (m *MPLS) LayerPayload() []byte { return m.payload }

// SerializeTo implements SerializableLayer.
func (m *MPLS) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	if m.Label >= 1<<20 {
		return fmt.Errorf("%w: MPLS label %d out of range", ErrBadHeader, m.Label)
	}
	h := b.PrependBytes(4)
	v := m.Label<<12 | uint32(m.TC&0x7)<<9 | uint32(m.TTL)
	if m.BottomStack {
		v |= 0x100
	}
	binary.BigEndian.PutUint32(h, v)
	return nil
}

// ARP is an IPv4-over-Ethernet ARP message.
type ARP struct {
	Operation uint16 // 1 request, 2 reply
	SenderMAC MAC
	SenderIP  netip.Addr
	TargetMAC MAC
	TargetIP  netip.Addr
	payload   []byte
}

// ARP operations.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// LayerType implements Layer.
func (a *ARP) LayerType() LayerType { return LayerTypeARP }

// DecodeFromBytes implements Layer.
func (a *ARP) DecodeFromBytes(data []byte) error {
	if len(data) < 28 {
		return ErrTooShort
	}
	if binary.BigEndian.Uint16(data[0:2]) != 1 || // Ethernet
		EtherType(binary.BigEndian.Uint16(data[2:4])) != EtherTypeIPv4 ||
		data[4] != 6 || data[5] != 4 {
		return fmt.Errorf("%w: unsupported ARP hardware/protocol", ErrBadHeader)
	}
	a.Operation = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderMAC[:], data[8:14])
	a.SenderIP = netip.AddrFrom4([4]byte(data[14:18]))
	copy(a.TargetMAC[:], data[18:24])
	a.TargetIP = netip.AddrFrom4([4]byte(data[24:28]))
	a.payload = data[28:]
	return nil
}

// NextLayerType implements Layer.
func (a *ARP) NextLayerType() LayerType { return LayerTypePayload }

// LayerPayload implements Layer.
func (a *ARP) LayerPayload() []byte { return a.payload }

// SerializeTo implements SerializableLayer.
func (a *ARP) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	if !a.SenderIP.Is4() || !a.TargetIP.Is4() {
		return fmt.Errorf("%w: ARP requires IPv4 addresses", ErrBadHeader)
	}
	h := b.PrependBytes(28)
	binary.BigEndian.PutUint16(h[0:2], 1)
	binary.BigEndian.PutUint16(h[2:4], uint16(EtherTypeIPv4))
	h[4], h[5] = 6, 4
	binary.BigEndian.PutUint16(h[6:8], a.Operation)
	copy(h[8:14], a.SenderMAC[:])
	s4 := a.SenderIP.As4()
	copy(h[14:18], s4[:])
	copy(h[18:24], a.TargetMAC[:])
	t4 := a.TargetIP.As4()
	copy(h[24:28], t4[:])
	return nil
}
