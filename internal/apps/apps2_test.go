package apps

import (
	"net/netip"
	"testing"

	"flexsfp/internal/fpga"
	"flexsfp/internal/hls"
	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// --- Telemetry -----------------------------------------------------------

func telemetryNode(t *testing.T, role string, id uint32) *telemetryApp {
	t.Helper()
	a := NewTelemetry()
	if err := a.Configure(mustJSON(t, TelemetryConfig{Role: role, DeviceID: id})); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestTelemetrySourceTransitSink(t *testing.T) {
	src := telemetryNode(t, TelemetrySource, 1)
	mid := telemetryNode(t, TelemetryTransit, 2)
	sink := telemetryNode(t, TelemetrySink, 3)

	frame := udpFrame(t, ipInt, ipSrv, 9, 10)
	orig := append([]byte(nil), frame...)

	_, f1 := run(src.prog.Handler, frame, ppe.DirEdgeToOptical)
	if len(f1) != len(orig)+4+packet.INTHopSize {
		t.Fatalf("source output = %d bytes", len(f1))
	}
	_, f2 := run(mid.prog.Handler, f1, ppe.DirEdgeToOptical)
	if len(f2) != len(f1)+packet.INTHopSize {
		t.Fatalf("transit output = %d bytes", len(f2))
	}
	_, f3 := run(sink.prog.Handler, f2, ppe.DirOpticalToEdge)
	if len(f3) != len(orig) {
		t.Fatalf("sink output = %d bytes, want original %d", len(f3), len(orig))
	}
	for i := range orig {
		if f3[i] != orig[i] {
			t.Fatal("frame corrupted through the telemetry path")
		}
	}

	paths := sink.Paths()
	if len(paths) != 1 {
		t.Fatalf("paths = %d", len(paths))
	}
	hops := paths[0].Hops
	if len(hops) != 3 {
		t.Fatalf("hops = %d, want 3 (src+transit+sink)", len(hops))
	}
	if hops[0].DeviceID != 1 || hops[1].DeviceID != 2 || hops[2].DeviceID != 3 {
		t.Errorf("device path = %d,%d,%d", hops[0].DeviceID, hops[1].DeviceID, hops[2].DeviceID)
	}
	// Draining clears.
	if len(sink.Paths()) != 0 {
		t.Error("Paths did not drain")
	}
}

func TestTelemetryTransitIgnoresPlainTraffic(t *testing.T) {
	mid := telemetryNode(t, TelemetryTransit, 2)
	frame := udpFrame(t, ipInt, ipSrv, 9, 10)
	orig := len(frame)
	_, out := run(mid.prog.Handler, frame, ppe.DirEdgeToOptical)
	if len(out) != orig {
		t.Error("transit modified uninstrumented traffic")
	}
}

func TestTelemetrySampling(t *testing.T) {
	a := NewTelemetry()
	if err := a.Configure(mustJSON(t, TelemetryConfig{
		Role: TelemetrySource, DeviceID: 1, SampleShift: 3, // 1-in-8
	})); err != nil {
		t.Fatal(err)
	}
	inserted := 0
	const flows = 800
	for i := 0; i < flows; i++ {
		frame := packet.MustBuild(packet.Spec{
			SrcMAC: macHost, DstMAC: macGW,
			SrcIP: ipInt, DstIP: ipSrv,
			SrcPort: uint16(i + 1), DstPort: 80,
		})
		_, out := run(a.prog.Handler, frame, ppe.DirEdgeToOptical)
		if len(out) > len(frame) {
			inserted++
		}
	}
	// Expect ≈100 of 800; allow a generous band.
	if inserted < 50 || inserted > 200 {
		t.Errorf("sampled %d of %d flows, want ≈100", inserted, flows)
	}
}

func TestTelemetryConfigValidation(t *testing.T) {
	a := NewTelemetry()
	if err := a.Configure(nil); err == nil {
		t.Error("missing config accepted")
	}
	if err := a.Configure(mustJSON(t, TelemetryConfig{Role: "observer"})); err == nil {
		t.Error("unknown role accepted")
	}
}

// --- NetFlow ---------------------------------------------------------------

func TestNetFlowAccounting(t *testing.T) {
	a := NewNetFlow()
	if err := a.Configure(nil); err != nil {
		t.Fatal(err)
	}
	// Two flows: 3 packets and 1 packet.
	for i := 0; i < 3; i++ {
		f := udpFrame(t, ipInt, ipSrv, 1111, 80)
		run(a.prog.Handler, f, ppe.DirEdgeToOptical)
	}
	f2 := udpFrame(t, ipInt, ipSrv, 2222, 80)
	run(a.prog.Handler, f2, ppe.DirEdgeToOptical)

	stats := a.Export()
	if len(stats) != 2 {
		t.Fatalf("flows = %d, want 2", len(stats))
	}
	var counts []uint64
	for _, s := range stats {
		counts = append(counts, s.Packets)
	}
	if !(counts[0] == 3 && counts[1] == 1 || counts[0] == 1 && counts[1] == 3) {
		t.Errorf("packet counts = %v", counts)
	}
	learned, _ := a.meta.Read(NFLearned)
	matched, _ := a.meta.Read(NFMatched)
	if learned != 2 || matched != 2 {
		t.Errorf("learned=%d matched=%d", learned, matched)
	}
}

func TestNetFlowBytesAccounting(t *testing.T) {
	a := NewNetFlow()
	f := udpFrame(t, ipInt, ipSrv, 1, 2) // 64 bytes
	run(a.prog.Handler, f, ppe.DirEdgeToOptical)
	run(a.prog.Handler, f, ppe.DirEdgeToOptical)
	stats := a.Export()
	if len(stats) != 1 || stats[0].Bytes != 128 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestNetFlowIgnoresNonIP(t *testing.T) {
	a := NewNetFlow()
	arp := make([]byte, 64)
	arp[12], arp[13] = 0x08, 0x06
	run(a.prog.Handler, arp, ppe.DirEdgeToOptical)
	if len(a.Export()) != 0 {
		t.Error("non-IP traffic created a flow")
	}
}

// --- Rate limiting ---------------------------------------------------------

func TestRateLimitPerSource(t *testing.T) {
	a := NewRateLimit()
	cfg := RateLimitConfig{Sources: []RateLimitRule{
		// 512 kb/s with one-frame burst.
		{SrcIP: ipInt.String(), RateBps: 512_000, BurstBits: 512},
	}}
	if err := a.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}
	frame := udpFrame(t, ipInt, ipSrv, 1, 2) // 64 B = 512 bits
	// First frame conforms (full bucket); immediate second exceeds.
	ctx := &ppe.Ctx{Data: frame, Dir: ppe.DirEdgeToOptical, TimestampNs: 0}
	if a.prog.Handler.HandlePacket(ctx) != ppe.VerdictPass {
		t.Error("first frame dropped")
	}
	ctx = &ppe.Ctx{Data: frame, Dir: ppe.DirEdgeToOptical, TimestampNs: 1000}
	if a.prog.Handler.HandlePacket(ctx) != ppe.VerdictDrop {
		t.Error("burst-exceeding frame passed")
	}
	// After 1 ms (512 bits refilled), it conforms again.
	ctx = &ppe.Ctx{Data: frame, Dir: ppe.DirEdgeToOptical, TimestampNs: 1_001_000}
	if a.prog.Handler.HandlePacket(ctx) != ppe.VerdictPass {
		t.Error("refilled frame dropped")
	}
	// Unlisted sources pass untouched.
	other := udpFrame(t, ipSrv, ipInt, 1, 2)
	ctx = &ppe.Ctx{Data: other, Dir: ppe.DirEdgeToOptical, TimestampNs: 1_001_500}
	if a.prog.Handler.HandlePacket(ctx) != ppe.VerdictPass {
		t.Error("unmatched source dropped without default meter")
	}
	unmatched, _ := a.ctr.Read(RLUnmatched)
	if unmatched != 1 {
		t.Errorf("unmatched counter = %d", unmatched)
	}
}

func TestRateLimitDefaultMeter(t *testing.T) {
	a := NewRateLimit()
	cfg := RateLimitConfig{DefaultRateBps: 512_000, DefaultBurstBits: 512}
	if err := a.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}
	frame := udpFrame(t, ipSrv, ipInt, 1, 2)
	ctx := &ppe.Ctx{Data: frame, Dir: ppe.DirEdgeToOptical, TimestampNs: 0}
	if a.prog.Handler.HandlePacket(ctx) != ppe.VerdictPass {
		t.Error("first default-metered frame dropped")
	}
	ctx = &ppe.Ctx{Data: frame, Dir: ppe.DirEdgeToOptical, TimestampNs: 100}
	if a.prog.Handler.HandlePacket(ctx) != ppe.VerdictDrop {
		t.Error("default meter did not police")
	}
}

func TestRateLimitConfigValidation(t *testing.T) {
	a := NewRateLimit()
	cfg := RateLimitConfig{Sources: []RateLimitRule{{SrcIP: "nope", RateBps: 1}}}
	if err := a.Configure(mustJSON(t, cfg)); err == nil {
		t.Error("bad source IP accepted")
	}
}

// --- DoH blocking ------------------------------------------------------------

func dnsQueryFrame(t *testing.T, qname string) []byte {
	t.Helper()
	q := &packet.DNS{ID: 1, RD: true,
		Questions: []packet.DNSQuestion{{Name: qname, Type: packet.DNSTypeA, Class: packet.DNSClassIN}}}
	ip := &packet.IPv4{TTL: 64, Protocol: packet.IPProtocolUDP, SrcIP: ipInt, DstIP: ipSrv}
	udp := &packet.UDP{SrcPort: 5353, DstPort: packet.PortDNS}
	if err := udp.SetNetworkLayerForChecksum(ipInt, ipSrv); err != nil {
		t.Fatal(err)
	}
	buf := packet.NewSerializeBuffer()
	err := packet.SerializeLayers(buf, packet.SerializeOptions{FixLengths: true, ComputeChecksums: true},
		&packet.Ethernet{SrcMAC: macHost, DstMAC: macGW, EtherType: packet.EtherTypeIPv4},
		ip, udp, q)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

func TestDoHBlocksDNSQueries(t *testing.T) {
	a := NewDoHBlock()
	cfg := DoHBlockConfig{BlockedDomains: []string{"ads.example"}}
	if err := a.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}
	if v, _ := run(a.prog.Handler, dnsQueryFrame(t, "ads.example"), ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("exact blocked name passed")
	}
	if v, _ := run(a.prog.Handler, dnsQueryFrame(t, "tracker.ads.example"), ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("subdomain of blocked name passed")
	}
	if v, _ := run(a.prog.Handler, dnsQueryFrame(t, "good.example"), ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Error("innocent query dropped")
	}
	blocked, _ := a.ctr.Read(DoHDNSBlocked)
	if blocked != 2 {
		t.Errorf("blocked counter = %d", blocked)
	}
}

func TestDoHBlocksResolverHTTPS(t *testing.T) {
	a := NewDoHBlock()
	cfg := DoHBlockConfig{ResolverIPs: []string{"1.1.1.1"}}
	if err := a.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}
	doh := packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW,
		SrcIP: ipInt, DstIP: netip.MustParseAddr("1.1.1.1"),
		Proto: packet.IPProtocolTCP, SrcPort: 44444, DstPort: 443,
	})
	if v, _ := run(a.prog.Handler, doh, ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("HTTPS to DoH resolver passed")
	}
	// HTTPS to anything else is untouched.
	web := packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW,
		SrcIP: ipInt, DstIP: ipSrv,
		Proto: packet.IPProtocolTCP, SrcPort: 44444, DstPort: 443,
	})
	if v, _ := run(a.prog.Handler, web, ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Error("regular HTTPS dropped")
	}
}

func TestDoHCaseInsensitive(t *testing.T) {
	a := NewDoHBlock()
	if err := a.BlockDomain("Ads.Example"); err != nil {
		t.Fatal(err)
	}
	if v, _ := run(a.prog.Handler, dnsQueryFrame(t, "ADS.example"), ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("case variant passed")
	}
}

func TestDoHIgnoresResponses(t *testing.T) {
	a := NewDoHBlock()
	if err := a.BlockDomain("ads.example"); err != nil {
		t.Fatal(err)
	}
	// A response (QR=1) for the blocked name still passes: queries are
	// filtered at the source side.
	r := &packet.DNS{ID: 1, QR: true,
		Questions: []packet.DNSQuestion{{Name: "ads.example", Type: packet.DNSTypeA, Class: packet.DNSClassIN}}}
	ip := &packet.IPv4{TTL: 64, Protocol: packet.IPProtocolUDP, SrcIP: ipSrv, DstIP: ipInt}
	udp := &packet.UDP{SrcPort: packet.PortDNS, DstPort: 5353}
	_ = udp.SetNetworkLayerForChecksum(ipSrv, ipInt)
	buf := packet.NewSerializeBuffer()
	_ = packet.SerializeLayers(buf, packet.SerializeOptions{FixLengths: true, ComputeChecksums: true},
		&packet.Ethernet{SrcMAC: macGW, DstMAC: macHost, EtherType: packet.EtherTypeIPv4}, ip, udp, r)
	frame := append([]byte(nil), buf.Bytes()...)
	if v, _ := run(a.prog.Handler, frame, ppe.DirOpticalToEdge); v != ppe.VerdictPass {
		t.Error("response dropped")
	}
}

// --- Sanitizer --------------------------------------------------------------

func TestSanitizeChecksAndCounters(t *testing.T) {
	a := NewSanitize()
	cfg := SanitizeConfig{VerifyChecksums: true, DropFragments: true, MinTTL: 2}
	if err := a.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}
	good := udpFrame(t, ipInt, ipSrv, 1, 2)
	if v, _ := run(a.prog.Handler, good, ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Error("healthy packet dropped")
	}

	// Corrupt the IPv4 checksum field directly.
	bad := udpFrame(t, ipInt, ipSrv, 1, 2)
	bad[14+10] ^= 0xff
	if v, _ := run(a.prog.Handler, bad, ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("bad checksum passed")
	}

	// Fragment.
	frag := packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW, SrcIP: ipInt, DstIP: ipSrv, SrcPort: 1, DstPort: 2,
	})
	frag[14+6] = 0x20 // MF flag
	// Fix the checksum so only the fragment check fires.
	frag[14+10], frag[14+11] = 0, 0
	cs := packet.Checksum(frag[14 : 14+20])
	frag[14+10], frag[14+11] = byte(cs>>8), byte(cs)
	if v, _ := run(a.prog.Handler, frag, ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("fragment passed")
	}

	// TTL below minimum.
	low := packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW, SrcIP: ipInt, DstIP: ipSrv,
		SrcPort: 1, DstPort: 2, TTL: 1,
	})
	if v, _ := run(a.prog.Handler, low, ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("low-TTL packet passed")
	}

	// Spoofed src == dst.
	spoof := udpFrame(t, ipSrv, ipSrv, 1, 2)
	if v, _ := run(a.prog.Handler, spoof, ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("land-attack packet passed")
	}

	for idx, want := range map[int]uint64{
		SanPassed: 1, SanBadChecksum: 1, SanFragment: 1, SanLowTTL: 1, SanSpoofedSrc: 1,
	} {
		if got, _ := a.ctr.Read(idx); got != want {
			t.Errorf("counter[%d] = %d, want %d", idx, got, want)
		}
	}
}

func TestSanitizeIPv6Policy(t *testing.T) {
	a := NewSanitize()
	if err := a.Configure(mustJSON(t, SanitizeConfig{DropIPv6: true})); err != nil {
		t.Fatal(err)
	}
	v6 := packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW,
		SrcIP: netip.MustParseAddr("2001:db8::1"), DstIP: netip.MustParseAddr("2001:db8::2"),
		SrcPort: 1, DstPort: 2,
	})
	if v, _ := run(a.prog.Handler, v6, ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("IPv6 passed under DropIPv6 policy")
	}
	v4 := udpFrame(t, ipInt, ipSrv, 1, 2)
	if v, _ := run(a.prog.Handler, v4, ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Error("IPv4 dropped under IPv6-only policy")
	}
}

// --- Registry & synthesis ----------------------------------------------------

func TestRegistryHasAllApps(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"nat", "acl", "vlan", "tunnel", "lb",
		"telemetry", "netflow", "ratelimit", "dohblock", "sanitize"} {
		app, err := r.New(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if app.Program().Name != name {
			t.Errorf("%s: program named %q", name, app.Program().Name)
		}
		if err := app.Program().Validate(); err != nil {
			t.Errorf("%s: invalid program: %v", name, err)
		}
	}
}

func TestAllAppsFitMPF200T(t *testing.T) {
	// Every catalog app must compile onto the prototype device at the
	// paper's operating point — the whole premise of the cheap path.
	r := NewRegistry()
	for _, name := range r.Names() {
		app, err := r.New(name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := hls.Compile(app.Program(), hls.Options{
			Device: fpga.MPF200T, ClockHz: 156_250_000, DatapathBits: 64,
		})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !d.Fit.Fits {
			t.Errorf("%s does not fit the MPF200T (limited by %s)", name, d.Fit.Limiting)
		}
		if d.Fit.Utilization.Max() > 90 {
			t.Errorf("%s uses %.0f%% of the device", name, d.Fit.Utilization.Max())
		}
	}
}
