package apps

// frameRing is an app's fixed egress packet-buffer memory: a ring of
// preallocated cells that encap/decap output cycles through, the way a
// hardware pipeline owns a fixed SRAM buffer pool rather than allocating
// per frame. Steady-state take() never allocates, which is what lets the
// tunnel and mesh handlers pin to 0 allocs/op.
//
// A cell is reused after ringFrames further frames; callers downstream
// (links, meters) must consume a frame well within that window, which
// every simulated path does — in-flight depth is bounded by link queues
// that stay far below the ring size at line rate.
type frameRing struct {
	slots [][]byte
	next  int
}

const (
	// ringFrames is the cell count: the bound on concurrently in-flight
	// encapped/decapped frames per app instance.
	ringFrames = 256
	// ringSlotBytes is the cell capacity. Deliberately NOT equal to the
	// trafficgen pool's frame class (2048): trafficgen.PutBuffer admits
	// buffers by exact capacity, so ring cells handed to a PutBuffer
	// sink are ignored instead of being adopted by the generator pool
	// (which would alias two writers onto one backing array).
	ringSlotBytes = 1792
)

func newFrameRing() *frameRing {
	r := &frameRing{slots: make([][]byte, ringFrames)}
	for i := range r.slots {
		r.slots[i] = make([]byte, 0, ringSlotBytes)
	}
	return r
}

// take returns the next cell, sized to n. Oversized requests regrow the
// cell once and keep it (no steady-state cost unless frames exceed the
// cell class, which standard Ethernet + 50B encap never does).
func (r *frameRing) take(n int) []byte {
	s := r.slots[r.next]
	if cap(s) < n {
		s = make([]byte, 0, n)
		r.slots[r.next] = s
	}
	out := s[:n]
	r.next++
	if r.next == len(r.slots) {
		r.next = 0
	}
	return out
}
