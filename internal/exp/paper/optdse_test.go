package paper

import (
	"bytes"
	"encoding/json"
	"testing"

	"flexsfp/internal/exp"
)

func runRegistered(t *testing.T, name string, ctx exp.RunContext) exp.Envelope {
	t.Helper()
	e, ok := exp.Default.Lookup(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	res, err := e.Run(ctx)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res.Envelope()
}

// TestDSEEnvelopeParallelInvariant pins the DSE determinism contract at
// the registry level: the envelope JSON must be byte-identical whether
// the grid is scored serially or by eight workers.
func TestDSEEnvelopeParallelInvariant(t *testing.T) {
	marshal := func(par int) []byte {
		env := runRegistered(t, "dse", exp.RunContext{Seed: 1, Parallelism: par})
		// Params echoes Parallelism (an execution knob, not a model
		// knob); blank it so the comparison covers the payload only.
		env.Params.Parallelism = 0
		raw, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	serial := marshal(1)
	parallel := marshal(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("dse envelope depends on -parallel:\nserial   %d bytes\nparallel %d bytes",
			len(serial), len(parallel))
	}
}

// TestPipelineOptAcceptance pins this PR's acceptance criteria as a
// regression test: the optimizer must reduce pipeline depth for at
// least three catalog apps, never increase it, keep every verdict
// identical, and measurably raise the program-bound XDP module's
// delivered rate at 64B line rate.
func TestPipelineOptAcceptance(t *testing.T) {
	env := runRegistered(t, "pipeline_opt", exp.RunContext{Seed: 1})
	metric := func(name string) float64 {
		t.Helper()
		for _, m := range env.Metrics {
			if m.Name == name {
				return m.Mean
			}
		}
		t.Fatalf("metric %q missing", name)
		return 0
	}
	if n := metric("apps_depth_reduced"); n < 3 {
		t.Errorf("depth reduced for %v apps, want >= 3", n)
	}
	if n := metric("depth_regressions"); n != 0 {
		t.Errorf("%v depth regressions, want 0", n)
	}
	if n := metric("verdict_mismatches"); n != 0 {
		t.Errorf("%v verdict mismatches, want 0", n)
	}
	off, on := metric("xdp_delivered_off"), metric("xdp_delivered_on")
	if on <= off {
		t.Errorf("optimizer did not raise delivered rate: %.3f -> %.3f Mpps", off, on)
	}

	detail, ok := env.Detail.(PipelineOptResult)
	if !ok {
		t.Fatalf("detail is %T, want PipelineOptResult", env.Detail)
	}
	if detail.XDP.Report.InsnsAfter >= detail.XDP.Report.InsnsBefore {
		t.Errorf("instruction passes removed nothing: %d -> %d",
			detail.XDP.Report.InsnsBefore, detail.XDP.Report.InsnsAfter)
	}
	if detail.LineRate.DropsOn >= detail.LineRate.DropsOff {
		t.Errorf("optimizer did not cut queue drops: %d -> %d",
			detail.LineRate.DropsOff, detail.LineRate.DropsOn)
	}
}

// TestLineRateOptFlagThreads smoke-checks the -opt wiring through the
// standard line-rate experiment: the optimized NAT build must still
// sustain line rate at every frame size and echo the knob in Params.
func TestLineRateOptFlagThreads(t *testing.T) {
	env := runRegistered(t, "linerate", exp.RunContext{Seed: 1, Optimize: true})
	if !env.Params.Optimize {
		t.Error("Params does not echo Optimize")
	}
	detail, ok := env.Detail.(LineRateResult)
	if !ok {
		t.Fatalf("detail is %T, want LineRateResult", env.Detail)
	}
	for _, p := range detail.Points {
		if !p.LineRate {
			t.Errorf("%s: optimized NAT lost line rate (%d drops)", p.Label, p.Drops)
		}
	}
}
