package apps

import "flexsfp/internal/core"

// NewRegistry returns a registry with every catalog application
// registered under the name its bitstreams carry.
func NewRegistry() *core.Registry {
	r := core.NewRegistry()
	r.Register("nat", func() core.App { return NewNAT() })
	r.Register("acl", func() core.App { return NewACL() })
	r.Register("vlan", func() core.App { return NewVLAN() })
	r.Register("tunnel", func() core.App { return NewTunnel() })
	r.Register("lb", func() core.App { return NewLB() })
	r.Register("telemetry", func() core.App { return NewTelemetry() })
	r.Register("netflow", func() core.App { return NewNetFlow() })
	r.Register("ratelimit", func() core.App { return NewRateLimit() })
	r.Register("dohblock", func() core.App { return NewDoHBlock() })
	r.Register("sanitize", func() core.App { return NewSanitize() })
	r.Register("monitor", func() core.App { return NewMonitor() })
	r.Register("xdp", func() core.App { return NewXDPApp() })
	r.Register("arpguard", func() core.App { return NewARPGuard() })
	r.Register("dhcpsnoop", func() core.App { return NewDHCPSnoop() })
	r.Register("dnsblock", func() core.App { return NewDNSBlock() })
	r.Register("mesh", func() core.App { return NewMesh() })
	return r
}
