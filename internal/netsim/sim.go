// Package netsim provides a deterministic discrete-event simulation kernel
// used by every time-dependent component of the FlexSFP model: links,
// packet-processing engines, flash timing, traffic generators, and the
// reliability fleet simulator.
//
// Each Simulator is single-threaded by design. All state mutation happens
// inside event callbacks executed by Run/Step, which keeps the simulation
// reproducible for a given seed and makes component models trivially safe
// to compose. Parallelism comes from above: Sharded partitions a topology
// across many Simulators (one event heap, clock, and RNG stream per
// shard) and advances them together under conservative lookahead
// synchronization — see shard.go.
package netsim

import (
	"fmt"
	"math/rand"

	"flexsfp/internal/telemetry"
)

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Seconds returns the time as a floating-point number of seconds since
// simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the time advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string {
	return fmt.Sprintf("%.9fs", t.Seconds())
}

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Completer is a preallocated completion target for the typed-event fast
// path: ScheduleCompletionAt fires Complete() on the value directly, so a
// hot path that owns a reusable completion struct (an engine's pooled
// frame context, a link's in-flight frame record) schedules work with no
// closure allocation at all.
type Completer interface {
	Complete()
}

// Event is a scheduled callback. It can be canceled before it fires.
type Event struct {
	at       Time
	seq      uint64 // tie-breaker: FIFO among same-time events
	fn       func()
	comp     Completer // typed fast path; used when fn is nil
	canceled bool
	pooled   bool // recycled onto the simulator free-list after firing
}

// At returns the simulated time at which the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Simulator owns the simulated clock and the pending-event queue.
type Simulator struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	fired  uint64

	// free recycles fired detached events. Only events scheduled through
	// the *Detached entry points land here: their callers hold no *Event,
	// so reusing the object cannot alias a live handle. The simulator is
	// single-threaded, so a plain slice beats sync.Pool (no per-P
	// shards, no GC clearing).
	free []*Event

	// gapHist, when attached (AttachTelemetry), observes the simulated-time
	// advance between consecutive fired events.
	gapHist  *telemetry.Histogram
	lastFire Time
}

// New returns a simulator whose clock starts at zero and whose random
// source is seeded deterministically with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source. All model
// randomness (measurement noise, traffic arrival jitter, failure sampling)
// must come from here so runs are reproducible.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Pending returns the number of events waiting to fire.
func (s *Simulator) Pending() int { return len(s.events) }

// Fired returns the total number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Schedule runs fn after delay d of simulated time. A negative delay is
// treated as zero (fires "now", after already-queued same-time events).
func (s *Simulator) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.ScheduleAt(s.now.Add(d), fn)
}

// ScheduleAt runs fn at absolute simulated time t. Times in the past are
// clamped to the current time.
func (s *Simulator) ScheduleAt(t Time, fn func()) *Event {
	return s.schedule(t, fn, false)
}

// ScheduleDetached runs fn after delay d like Schedule, but returns no
// handle: the event cannot be canceled, and its Event object is recycled
// after it fires. This is the allocation-free path every per-frame
// schedule (engine verdicts, generator emission, link delivery) uses.
func (s *Simulator) ScheduleDetached(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.now.Add(d), fn, true)
}

// ScheduleAtDetached is ScheduleAt without a handle; see ScheduleDetached.
func (s *Simulator) ScheduleAtDetached(t Time, fn func()) {
	s.schedule(t, fn, true)
}

// ScheduleCompletionAt schedules c.Complete() at absolute time t through
// the detached free-list, with no closure: the caller keeps ownership of
// c and may recycle it once Complete has fired. This is the zero-alloc
// path for per-frame completions (engine verdicts, link deliveries).
func (s *Simulator) ScheduleCompletionAt(t Time, c Completer) {
	e := s.schedule(t, nil, true)
	e.comp = c
}

// ScheduleCompletion is ScheduleCompletionAt relative to now.
func (s *Simulator) ScheduleCompletion(d Duration, c Completer) {
	if d < 0 {
		d = 0
	}
	s.ScheduleCompletionAt(s.now.Add(d), c)
}

func (s *Simulator) schedule(t Time, fn func(), pooled bool) *Event {
	if t < s.now {
		t = s.now
	}
	var e *Event
	if n := len(s.free); pooled && n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.at, e.fn, e.canceled = t, fn, false
	} else {
		e = &Event{at: t, fn: fn}
	}
	e.seq = s.seq
	e.pooled = pooled
	s.seq++
	s.events.push(e)
	return e
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		e := s.events.pop()
		if e.canceled {
			continue
		}
		if s.gapHist != nil {
			s.gapHist.Observe(uint64(e.at - s.lastFire))
			s.lastFire = e.at
		}
		s.now = e.at
		s.fired++
		if e.fn != nil {
			e.fn()
		} else if e.comp != nil {
			e.comp.Complete()
		}
		if e.pooled {
			// Recycle only after the callback returns: anything it
			// scheduled has already taken its own Event, so no live
			// reference remains.
			e.fn = nil
			e.comp = nil
			s.free = append(s.free, e)
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to exactly t. Events scheduled after t remain pending.
func (s *Simulator) RunUntil(t Time) {
	for {
		e := s.peek()
		if e == nil || e.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor executes events for a span d of simulated time starting now.
func (s *Simulator) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// runBefore executes every event strictly before limit, leaving the clock
// at the last fired event. It is the conservative-window execution
// primitive of the sharded simulator: a shard granted the window [now,
// limit) may fire exactly these events without seeing a cross-shard
// message, because any such message arrives at or after limit.
func (s *Simulator) runBefore(limit Time) {
	for {
		e := s.peek()
		if e == nil || e.at >= limit {
			return
		}
		s.Step()
	}
}

// nextAt reports the timestamp of the earliest pending event, if any. The
// sharded coordinator uses it between windows to compute the global
// lower-bound time.
func (s *Simulator) nextAt() (Time, bool) {
	if e := s.peek(); e != nil {
		return e.at, true
	}
	return 0, false
}

func (s *Simulator) peek() *Event {
	for len(s.events) > 0 {
		if s.events[0].canceled {
			s.events.pop()
			continue
		}
		return s.events[0]
	}
	return nil
}

// Every schedules fn to run every period, starting one period from now,
// until the returned Ticker is stopped. If fn returns false the ticker
// stops itself.
func (s *Simulator) Every(period Duration, fn func() bool) *Ticker {
	if period <= 0 {
		panic("netsim: ticker period must be positive")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.arm()
	return t
}

// Ticker is a repeating event created by Simulator.Every.
type Ticker struct {
	sim     *Simulator
	period  Duration
	fn      func() bool
	ev      *Event
	stopped bool
}

func (t *Ticker) arm() {
	t.ev = t.sim.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		if !t.fn() {
			t.stopped = true
			return
		}
		if t.stopped {
			// fn called Stop on its own ticker and still returned true:
			// honor the Stop instead of re-arming a dead event.
			return
		}
		t.arm()
	})
}

// Stop cancels the ticker. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
