package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// DHCPv4 wire constants.
const (
	// DHCPFixedLen is the BOOTP fixed header (236 bytes) plus the 4-byte
	// DHCP magic cookie.
	DHCPFixedLen = 240

	dhcpMagicCookie = 0x63825363
)

// DHCPMsgType is the option-53 message type.
type DHCPMsgType uint8

// DHCP message types (RFC 2132 §9.6).
const (
	DHCPDiscover DHCPMsgType = 1
	DHCPOffer    DHCPMsgType = 2
	DHCPRequest  DHCPMsgType = 3
	DHCPDecline  DHCPMsgType = 4
	DHCPAck      DHCPMsgType = 5
	DHCPNak      DHCPMsgType = 6
	DHCPRelease  DHCPMsgType = 7
	DHCPInform   DHCPMsgType = 8
)

func (t DHCPMsgType) String() string {
	switch t {
	case DHCPDiscover:
		return "DISCOVER"
	case DHCPOffer:
		return "OFFER"
	case DHCPRequest:
		return "REQUEST"
	case DHCPDecline:
		return "DECLINE"
	case DHCPAck:
		return "ACK"
	case DHCPNak:
		return "NAK"
	case DHCPRelease:
		return "RELEASE"
	case DHCPInform:
		return "INFORM"
	default:
		return fmt.Sprintf("DHCPMsgType(%d)", uint8(t))
	}
}

// DHCP option codes the catalog uses.
const (
	DHCPOptPad         uint8 = 0
	DHCPOptSubnetMask  uint8 = 1
	DHCPOptRouter      uint8 = 3
	DHCPOptDNS         uint8 = 6
	DHCPOptRequestedIP uint8 = 50
	DHCPOptLeaseTime   uint8 = 51
	DHCPOptMsgType     uint8 = 53
	DHCPOptServerID    uint8 = 54
	DHCPOptEnd         uint8 = 255
)

// BOOTP ops.
const (
	DHCPOpRequest uint8 = 1
	DHCPOpReply   uint8 = 2
)

// DHCPOption is one TLV option.
type DHCPOption struct {
	Code uint8
	Data []byte
}

// DHCPv4 is a BOOTP/DHCP message (Ethernet hardware addresses only — the
// shape the in-cable snooping pipeline parses). The 192 bytes of
// sname/file are treated as opaque zero padding.
type DHCPv4 struct {
	Op        uint8 // DHCPOpRequest / DHCPOpReply
	Hops      uint8
	XID       uint32
	Secs      uint16
	Broadcast bool
	ClientIP  netip.Addr // ciaddr
	YourIP    netip.Addr // yiaddr
	ServerIP  netip.Addr // siaddr
	GatewayIP netip.Addr // giaddr
	ClientMAC MAC        // chaddr (htype 1, hlen 6)
	// Options excludes the terminating End option, which decode strips
	// and serialize re-appends.
	Options []DHCPOption
	payload []byte
}

// LayerType implements Layer.
func (d *DHCPv4) LayerType() LayerType { return LayerTypeDHCPv4 }

// DecodeFromBytes implements Layer.
func (d *DHCPv4) DecodeFromBytes(data []byte) error {
	if len(data) < DHCPFixedLen {
		return ErrTooShort
	}
	if binary.BigEndian.Uint32(data[236:240]) != dhcpMagicCookie {
		return fmt.Errorf("%w: missing DHCP magic cookie", ErrBadHeader)
	}
	if data[1] != 1 || data[2] != 6 {
		return fmt.Errorf("%w: unsupported DHCP hardware type/length", ErrBadHeader)
	}
	d.Op = data[0]
	d.Hops = data[3]
	d.XID = binary.BigEndian.Uint32(data[4:8])
	d.Secs = binary.BigEndian.Uint16(data[8:10])
	d.Broadcast = binary.BigEndian.Uint16(data[10:12])&0x8000 != 0
	d.ClientIP = netip.AddrFrom4([4]byte(data[12:16]))
	d.YourIP = netip.AddrFrom4([4]byte(data[16:20]))
	d.ServerIP = netip.AddrFrom4([4]byte(data[20:24]))
	d.GatewayIP = netip.AddrFrom4([4]byte(data[24:28]))
	copy(d.ClientMAC[:], data[28:34])

	d.Options = d.Options[:0]
	p := DHCPFixedLen
	for p < len(data) {
		code := data[p]
		switch code {
		case DHCPOptPad:
			p++
			continue
		case DHCPOptEnd:
			d.payload = data[len(data):]
			return nil
		}
		if p+2 > len(data) {
			return ErrTooShort
		}
		l := int(data[p+1])
		if p+2+l > len(data) {
			return ErrTruncated
		}
		d.Options = append(d.Options, DHCPOption{Code: code, Data: data[p+2 : p+2+l]})
		p += 2 + l
	}
	d.payload = data[len(data):]
	return nil
}

// NextLayerType implements Layer.
func (d *DHCPv4) NextLayerType() LayerType { return LayerTypePayload }

// LayerPayload implements Layer.
func (d *DHCPv4) LayerPayload() []byte { return d.payload }

// Option returns the first option with the given code.
func (d *DHCPv4) Option(code uint8) ([]byte, bool) {
	for _, o := range d.Options {
		if o.Code == code {
			return o.Data, true
		}
	}
	return nil, false
}

// MsgType returns the option-53 message type, if present.
func (d *DHCPv4) MsgType() (DHCPMsgType, bool) {
	if data, ok := d.Option(DHCPOptMsgType); ok && len(data) == 1 {
		return DHCPMsgType(data[0]), true
	}
	return 0, false
}

// SerializeTo implements SerializableLayer.
func (d *DHCPv4) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	optLen := 1 // End
	for _, o := range d.Options {
		if len(o.Data) > 255 {
			return fmt.Errorf("%w: DHCP option %d data %d bytes", ErrBadHeader, o.Code, len(o.Data))
		}
		optLen += 2 + len(o.Data)
	}
	h := b.PrependBytes(DHCPFixedLen + optLen)
	for i := range h {
		h[i] = 0
	}
	h[0] = d.Op
	h[1], h[2] = 1, 6 // Ethernet chaddr
	h[3] = d.Hops
	binary.BigEndian.PutUint32(h[4:8], d.XID)
	binary.BigEndian.PutUint16(h[8:10], d.Secs)
	if d.Broadcast {
		binary.BigEndian.PutUint16(h[10:12], 0x8000)
	}
	for i, a := range []netip.Addr{d.ClientIP, d.YourIP, d.ServerIP, d.GatewayIP} {
		if a.IsValid() {
			if !a.Is4() {
				return fmt.Errorf("%w: DHCP requires IPv4 addresses", ErrBadHeader)
			}
			a4 := a.As4()
			copy(h[12+4*i:16+4*i], a4[:])
		}
	}
	copy(h[28:34], d.ClientMAC[:])
	binary.BigEndian.PutUint32(h[236:240], dhcpMagicCookie)
	p := DHCPFixedLen
	for _, o := range d.Options {
		h[p] = o.Code
		h[p+1] = uint8(len(o.Data))
		copy(h[p+2:], o.Data)
		p += 2 + len(o.Data)
	}
	h[p] = DHCPOptEnd
	return nil
}
