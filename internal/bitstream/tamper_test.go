package bitstream

import (
	"bytes"
	"errors"
	"testing"
)

// TestTamperedImagePaths drives one representative tamper through each
// verification layer and checks that each fails with its own sentinel —
// an orchestrator can therefore tell an integrity fault from an
// authentication fault from a downgrade attempt.
func TestTamperedImagePaths(t *testing.T) {
	key := []byte("fleet-key")
	src := &Bitstream{
		AppName: "nat", AppVersion: 3, Device: "MPF200T",
		ClockKHz: 156_250, DatapathBits: 64,
		Payload: bytes.Repeat([]byte{0x5A}, 128),
	}
	enc, err := src.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// install mimics the receiver: authenticate, decode, check freshness
	// against the running version (3).
	install := func(signed []byte) error {
		body, err := Verify(signed, key)
		if err != nil {
			return err
		}
		bs, err := Decode(body)
		if err != nil {
			return err
		}
		return bs.VerifyFreshness(src.AppVersion)
	}
	if err := install(Sign(enc, key)); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}

	cases := []struct {
		name   string
		signed func() []byte
		want   error
	}{
		{
			// A flipped byte in the CRC trailer: the blob authenticates
			// (re-signed, e.g. by a compromised builder) but fails the
			// integrity check.
			name: "flipped CRC byte",
			signed: func() []byte {
				bad := append([]byte(nil), enc...)
				bad[len(bad)-1] ^= 0x01
				return Sign(bad, key)
			},
			want: ErrBadCRC,
		},
		{
			// A truncated payload: the header promises more bytes than
			// arrive, so decoding cannot even reach the CRC.
			name: "truncated payload",
			signed: func() []byte {
				bad := append([]byte(nil), enc[:len(enc)-16]...)
				return Sign(bad, key)
			},
			want: ErrTooShort,
		},
		{
			name: "wrong HMAC key",
			signed: func() []byte {
				return Sign(enc, []byte("attacker-key"))
			},
			want: ErrBadMAC,
		},
		{
			// A genuine, correctly signed image of an older version: only
			// the freshness check stands between it and a downgrade.
			name: "stale version",
			signed: func() []byte {
				old := *src
				old.AppVersion = 1
				oldEnc, err := old.Encode()
				if err != nil {
					t.Fatal(err)
				}
				return Sign(oldEnc, key)
			},
			want: ErrStaleVersion,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := install(tc.signed()); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestVerifyFreshness(t *testing.T) {
	bs := &Bitstream{AppVersion: 5}
	if err := bs.VerifyFreshness(5); err != nil {
		t.Errorf("equal version rejected: %v", err)
	}
	if err := bs.VerifyFreshness(4); err != nil {
		t.Errorf("newer version rejected: %v", err)
	}
	if err := bs.VerifyFreshness(6); !errors.Is(err, ErrStaleVersion) {
		t.Errorf("stale version: err = %v", err)
	}
}
