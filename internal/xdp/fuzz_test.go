package xdp

import (
	"encoding/binary"
	"testing"
)

// insnWire is the fuzz wire format: 14 bytes per instruction, raw (no
// modular clamping), so the fuzzer reaches both the verifier's error
// paths and, through them, valid programs.
const insnWire = 14

func decodeFuzzProgram(data []byte) *Program {
	n := len(data) / insnWire
	if n == 0 || n > MaxInsns+8 {
		return nil
	}
	insns := make([]Insn, n)
	for i := range insns {
		b := data[i*insnWire : (i+1)*insnWire]
		insns[i] = Insn{
			Op:     Op(b[0]),
			Dst:    Reg(b[1]),
			Src:    Reg(b[2]),
			Off:    int16(binary.BigEndian.Uint16(b[3:5])),
			Imm:    int64(binary.BigEndian.Uint64(b[5:13])),
			UseImm: b[13]&1 == 1,
		}
	}
	return &Program{Name: "fuzz", Insns: insns}
}

func encodeFuzzProgram(p *Program) []byte {
	out := make([]byte, 0, len(p.Insns)*insnWire)
	for _, in := range p.Insns {
		var b [insnWire]byte
		b[0], b[1], b[2] = byte(in.Op), byte(in.Dst), byte(in.Src)
		binary.BigEndian.PutUint16(b[3:5], uint16(in.Off))
		binary.BigEndian.PutUint64(b[5:13], uint64(in.Imm))
		if in.UseImm {
			b[13] = 1
		}
		out = append(out, b[:]...)
	}
	return out
}

// seedPrograms is the corpus shared by both targets: the optimizer test
// programs (redundant loads, jump chains, trampolines) plus degenerate
// shapes that sit right on verifier edges.
func seedPrograms() []*Program {
	return []*Program{
		{Name: "pass", Insns: []Insn{MovImm(0, ActPass), Exit()}},
		{Name: "dup-loads", Insns: []Insn{
			MovImm(1, 0), LdH(2, 1, 12), LdH(3, 1, 12),
			JNeImm(2, 0x0800, 2), MovImm(0, ActDrop), Exit(),
			MovImm(0, ActPass), Exit(),
		}},
		{Name: "drop-udp-53", Insns: []Insn{
			MovImm(1, 0), LdH(2, 1, 12), LdH(6, 1, 12), MovImm(7, 0),
			JNeImm(2, 0x0800, 8), LdB(3, 1, 23), JNeImm(3, 17, 6),
			LdB(4, 1, 14),
			{Op: OpAnd, Dst: 4, Imm: 0x0F, UseImm: true},
			{Op: OpLsh, Dst: 4, Imm: 2, UseImm: true},
			{Op: OpAdd, Dst: 4, Imm: 16, UseImm: true},
			LdH(5, 4, 0), JEqImm(5, 53, 2),
			MovImm(0, ActPass), Exit(), MovImm(0, ActDrop), Exit(),
		}},
		{Name: "store", Insns: []Insn{
			MovImm(1, 0), StB(1, 0, 0xAA), LdB(2, 1, 0),
			MovImm(0, ActTx), Exit(),
		}},
		{Name: "fall-off", Insns: []Insn{MovImm(0, 0)}},
		{Name: "back-jump", Insns: []Insn{{Op: OpJmp, Off: -1}, Exit()}},
	}
}

// FuzzXDPVerify throws arbitrary instruction streams at the verifier:
// it must never panic, and a program it accepts must be safe to run —
// the interpreter must terminate (forward-only jumps) without panicking
// on any packet.
func FuzzXDPVerify(f *testing.F) {
	for _, p := range seedPrograms() {
		f.Add(encodeFuzzProgram(p))
	}
	pkt := make([]byte, 64)
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeFuzzProgram(data)
		if p == nil {
			return
		}
		if err := p.Verify(); err != nil {
			return
		}
		// Verified ⇒ runnable: bounded, no backward jumps, cannot fall
		// off the end.
		if _, err := p.Run(pkt); err == ErrNoExit {
			t.Fatalf("verified program fell off the end")
		}
	})
}

// FuzzXDPRun exercises the interpreter's checked-access unit with
// arbitrary verified programs against arbitrary packets: every
// out-of-bounds access must surface as ErrOutOfBounds + ActAborted,
// never as a slice panic, and in-bounds runs must return a terminal
// action.
func FuzzXDPRun(f *testing.F) {
	for _, p := range seedPrograms() {
		f.Add(encodeFuzzProgram(p), make([]byte, 14))
		f.Add(encodeFuzzProgram(p), []byte{})
		f.Add(encodeFuzzProgram(p), make([]byte, 64))
	}
	f.Fuzz(func(t *testing.T, data, pkt []byte) {
		p := decodeFuzzProgram(data)
		if p == nil || p.Verify() != nil {
			return
		}
		act, err := p.Run(pkt)
		if err != nil {
			if act != ActAborted {
				t.Fatalf("fault returned action %d, want ActAborted", act)
			}
			return
		}
		if act < 0 {
			t.Fatalf("negative action %d", act)
		}
	})
}
