// Package xdp implements the eBPF/XDP offload path of §4.2: "Application
// development may follow various approaches, including … implementing
// offload mechanisms for eBPF/XDP [hXDP, eHDL]." It provides a compact
// eBPF-inspired instruction set, a verifier enforcing the properties a
// hardware datapath needs (bounded programs, forward-only control flow,
// checked packet access), an interpreter that models the synthesized
// logic, and an adapter that packages a verified program as a ppe.Program
// with hXDP-calibrated resource estimates — so XDP-style codelets ride
// the same compile → bitstream → boot pipeline as the native apps.
package xdp

import (
	"errors"
	"fmt"
)

// Reg is a register index; r0..r9 are general purpose (r0 carries the
// verdict at exit), r10 is reserved (reads as frame length).
type Reg uint8

// NumRegs is the register file size.
const NumRegs = 11

// RegFrameLen is the read-only register holding the packet length.
const RegFrameLen Reg = 10

// Op is an instruction opcode.
type Op uint8

// Opcodes. ALU ops take dst and either src register or immediate;
// loads read from the packet at [srcReg + off]; stores write the low
// bytes of src (or the immediate) to [dstReg + off]; jumps are relative
// and strictly forward.
const (
	OpMov Op = iota
	OpAdd
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpLsh
	OpRsh
	OpLdB  // dst = u8  pkt[src+off]
	OpLdH  // dst = u16 pkt[src+off] (big-endian, network order)
	OpLdW  // dst = u32 pkt[src+off]
	OpStB  // pkt[dst+off] = u8(srcOrImm)
	OpStH  // pkt[dst+off] = u16(srcOrImm)
	OpStW  // pkt[dst+off] = u32(srcOrImm)
	OpJmp  // pc += off
	OpJEq  // if dst == srcOrImm: pc += off
	OpJNe  // if dst != srcOrImm: pc += off
	OpJGt  // if dst >  srcOrImm: pc += off
	OpJLt  // if dst <  srcOrImm: pc += off
	OpJSet // if dst &  srcOrImm: pc += off
	OpExit // return r0 as the XDP action
	opMax
)

var opNames = [...]string{
	OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpLsh: "lsh", OpRsh: "rsh",
	OpLdB: "ldb", OpLdH: "ldh", OpLdW: "ldw",
	OpStB: "stb", OpStH: "sth", OpStW: "stw",
	OpJmp: "jmp", OpJEq: "jeq", OpJNe: "jne", OpJGt: "jgt", OpJLt: "jlt",
	OpJSet: "jset", OpExit: "exit",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Insn is one instruction.
type Insn struct {
	Op     Op
	Dst    Reg
	Src    Reg
	Off    int16 // jump displacement or memory offset
	Imm    int64
	UseImm bool // ALU/jump second operand is Imm rather than Src
}

// XDP actions returned in r0, matching the kernel's numbering.
const (
	ActAborted  = 0
	ActDrop     = 1
	ActPass     = 2
	ActTx       = 3
	ActRedirect = 4
)

// MaxInsns bounds program size (hXDP-class instruction memories).
const MaxInsns = 4096

// Program is a sequence of instructions.
type Program struct {
	Name  string
	Insns []Insn
}

// Verification errors.
var (
	ErrTooLong     = errors.New("xdp: program exceeds MaxInsns")
	ErrEmpty       = errors.New("xdp: empty program")
	ErrBadReg      = errors.New("xdp: bad register")
	ErrBadOp       = errors.New("xdp: bad opcode")
	ErrBackJump    = errors.New("xdp: backward jump (loops are not offloadable)")
	ErrJumpRange   = errors.New("xdp: jump out of range")
	ErrNoExit      = errors.New("xdp: control can fall off the end")
	ErrWriteROReg  = errors.New("xdp: write to read-only register")
	ErrShiftRange  = errors.New("xdp: shift amount out of range")
	ErrOutOfBounds = errors.New("xdp: packet access out of bounds")
	ErrDivByZero   = errors.New("xdp: arithmetic fault")
	ErrNotVerified = errors.New("xdp: program not verified")
)

// Verify checks the static properties a hardware offload needs: bounded
// size, valid registers and opcodes, strictly forward jumps (termination
// by construction — the same restriction hXDP-class datapaths impose),
// and that every path reaches OpExit.
func (p *Program) Verify() error {
	n := len(p.Insns)
	if n == 0 {
		return ErrEmpty
	}
	if n > MaxInsns {
		return fmt.Errorf("%w: %d", ErrTooLong, n)
	}
	for i, in := range p.Insns {
		if in.Op >= opMax {
			return fmt.Errorf("%w at %d: %d", ErrBadOp, i, in.Op)
		}
		if in.Dst >= NumRegs || in.Src >= NumRegs {
			return fmt.Errorf("%w at %d", ErrBadReg, i)
		}
		switch in.Op {
		case OpMov, OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpLsh, OpRsh, OpLdB, OpLdH, OpLdW:
			if in.Dst == RegFrameLen {
				return fmt.Errorf("%w at %d", ErrWriteROReg, i)
			}
			if (in.Op == OpLsh || in.Op == OpRsh) && in.UseImm && (in.Imm < 0 || in.Imm > 63) {
				return fmt.Errorf("%w at %d", ErrShiftRange, i)
			}
		case OpJmp, OpJEq, OpJNe, OpJGt, OpJLt, OpJSet:
			if in.Off <= 0 {
				return fmt.Errorf("%w at %d", ErrBackJump, i)
			}
			if i+1+int(in.Off) >= n {
				return fmt.Errorf("%w at %d", ErrJumpRange, i)
			}
		}
	}
	// Reachability: with forward-only jumps, simulate the worklist once.
	// Every reachable instruction must not fall past the end.
	reachable := make([]bool, n)
	reachable[0] = true
	for i := 0; i < n; i++ {
		if !reachable[i] {
			continue
		}
		in := p.Insns[i]
		switch in.Op {
		case OpExit:
			// terminal
		case OpJmp:
			reachable[i+1+int(in.Off)] = true
		case OpJEq, OpJNe, OpJGt, OpJLt, OpJSet:
			reachable[i+1+int(in.Off)] = true
			if i+1 >= n {
				return ErrNoExit
			}
			reachable[i+1] = true
		default:
			if i+1 >= n {
				return ErrNoExit
			}
			reachable[i+1] = true
		}
	}
	return nil
}

// Run interprets the program over pkt. Packet accesses are bounds-checked
// (the hardware's checked-access unit); an out-of-bounds access aborts
// the packet, mirroring XDP_ABORTED semantics.
func (p *Program) Run(pkt []byte) (action int, err error) {
	var r [NumRegs]uint64
	r[RegFrameLen] = uint64(len(pkt))
	pc := 0
	for pc < len(p.Insns) {
		in := p.Insns[pc]
		operand := func() uint64 {
			if in.UseImm {
				return uint64(in.Imm)
			}
			return r[in.Src]
		}
		switch in.Op {
		case OpMov:
			r[in.Dst] = operand()
		case OpAdd:
			r[in.Dst] += operand()
		case OpSub:
			r[in.Dst] -= operand()
		case OpMul:
			r[in.Dst] *= operand()
		case OpAnd:
			r[in.Dst] &= operand()
		case OpOr:
			r[in.Dst] |= operand()
		case OpXor:
			r[in.Dst] ^= operand()
		case OpLsh:
			r[in.Dst] <<= operand() & 63
		case OpRsh:
			r[in.Dst] >>= operand() & 63
		case OpLdB, OpLdH, OpLdW:
			size := map[Op]int{OpLdB: 1, OpLdH: 2, OpLdW: 4}[in.Op]
			at := int64(r[in.Src]) + int64(in.Off)
			if at < 0 || at+int64(size) > int64(len(pkt)) {
				return ActAborted, fmt.Errorf("%w: load %d at %d (len %d)", ErrOutOfBounds, size, at, len(pkt))
			}
			var v uint64
			for k := 0; k < size; k++ {
				v = v<<8 | uint64(pkt[at+int64(k)])
			}
			r[in.Dst] = v
		case OpStB, OpStH, OpStW:
			size := map[Op]int{OpStB: 1, OpStH: 2, OpStW: 4}[in.Op]
			at := int64(r[in.Dst]) + int64(in.Off)
			if at < 0 || at+int64(size) > int64(len(pkt)) {
				return ActAborted, fmt.Errorf("%w: store %d at %d (len %d)", ErrOutOfBounds, size, at, len(pkt))
			}
			v := operand()
			for k := size - 1; k >= 0; k-- {
				pkt[at+int64(k)] = byte(v)
				v >>= 8
			}
		case OpJmp:
			// Displacements are relative to the next instruction, as in
			// eBPF: pc' = pc + 1 + off.
			pc += int(in.Off) + 1
			continue
		case OpJEq, OpJNe, OpJGt, OpJLt, OpJSet:
			taken := false
			a, b := r[in.Dst], operand()
			switch in.Op {
			case OpJEq:
				taken = a == b
			case OpJNe:
				taken = a != b
			case OpJGt:
				taken = a > b
			case OpJLt:
				taken = a < b
			case OpJSet:
				taken = a&b != 0
			}
			if taken {
				pc += int(in.Off) + 1
				continue
			}
		case OpExit:
			// BPF programs return u32: the exit value is r0's low 32
			// bits, never a sign-extended 64-bit register image (a
			// hostile program could otherwise exit with a negative
			// "action").
			return int(uint32(r[0])), nil
		}
		pc++
	}
	return ActAborted, ErrNoExit
}
