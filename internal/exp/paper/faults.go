package paper

import (
	"fmt"

	"flexsfp/internal/apps"
	"flexsfp/internal/bitstream"
	"flexsfp/internal/build"
	"flexsfp/internal/core"
	"flexsfp/internal/exp"
	"flexsfp/internal/faults"
	"flexsfp/internal/fpga"
	"flexsfp/internal/hls"
	"flexsfp/internal/mgmt"
	"flexsfp/internal/netsim"
	"flexsfp/internal/runner"
)

// ---------------------------------------------------------------------------
// Reconfiguration under faults (§4.2 made adversarial): a fleet-wide canary
// rollout of a new bitstream while the fault injector attacks the mgmt
// transport (connection drops, stalls, byte corruption), cuts power during
// flash commits, and wedges freshly configured PPEs so the watchdog must
// fall back to golden. Sweeps a fault-rate multiplier and reports recovery
// time, rollout availability, and self-healing counters as mean ± 95% CI.
//
// Determinism: every module owns its simulator and injector, seeded from
// the trial seed, so member outcomes are independent of fleet goroutine
// interleaving and the whole experiment is bit-identical for any -parallel
// setting.

// Fleet/rollout shape of the experiment.
const (
	faultFleetModules  = 6
	faultTargetSlot    = 2
	faultCanaries      = 2
	faultWaveSize      = 2
	faultMaxFailFrac   = 0.3
	faultRetryAttempts = 4
)

// Per-event probabilities at fault-rate multiplier 1.0.
var faultBaseRates = faults.Rates{ConnDrop: 0.08, Stall: 0.05, Corrupt: 0.05}

const (
	faultWedgeProb    = 0.22 // new design comes up wedged (per reboot into it)
	faultPowerCutProb = 0.10 // power cut during the commit's flash program
)

// FaultRatePoint aggregates one fault-rate setting across trials.
type FaultRatePoint struct {
	Rate float64 // fault-rate multiplier applied to all probabilities

	Availability    runner.Summary // fraction of modules running at the end
	UpgradeRate     runner.Summary // fraction running the new image
	RecoveryMs      runner.Summary // mean per-module reconfigure+recovery time
	GoldenFallbacks runner.Summary // boots recovered onto the golden image
	WatchdogTrips   runner.Summary // wedged-PPE detections
	CanaryRollbacks runner.Summary // rollouts aborted and rolled back (0/1)
	ClientRetries   runner.Summary // mgmt request retries across the fleet
	InjectedFaults  runner.Summary // total faults the injectors fired
}

// ReconfigUnderFaultsResult is the §4.2 chaos sweep.
type ReconfigUnderFaultsResult struct {
	Trials  int
	Modules int
	MaxRate float64
	Points  []FaultRatePoint
}

// faultPoint is one trial's raw metrics at one fault rate.
type faultPoint struct {
	avail, upgraded, recoveryMs float64
	golden, watchdog, rollback  float64
	retries, injected           float64
}

// faultImages holds the shared (deterministic) compiled artifacts: the
// golden fallback, the running v1, and the signed v2 being rolled out.
type faultImages struct {
	registry *core.Registry
	golden   []byte
	v1       []byte
	signedV2 []byte
}

func buildFaultImages() (*faultImages, error) {
	registry := apps.NewRegistry()
	compile := func(golden bool, bumpVersion uint32) ([]byte, error) {
		app, err := registry.New("nat")
		if err != nil {
			return nil, err
		}
		if err := app.Configure(nil); err != nil {
			return nil, err
		}
		prog := app.Program()
		prog.Version += bumpVersion
		d, err := hls.Compile(prog, hls.Options{
			Device: fpga.MPF200T, Shell: hls.TwoWayCore,
			ClockHz: build.BaseClockHz, DatapathBits: build.BaseDatapathBits,
			Golden: golden,
		})
		if err != nil {
			return nil, err
		}
		return d.Bitstream.Encode()
	}
	golden, err := compile(true, 0)
	if err != nil {
		return nil, err
	}
	v1, err := compile(false, 0)
	if err != nil {
		return nil, err
	}
	v2, err := compile(false, 1)
	if err != nil {
		return nil, err
	}
	return &faultImages{
		registry: registry, golden: golden, v1: v1,
		signedV2: bitstream.Sign(v2, build.DefaultAuthKey),
	}, nil
}

// reconfigFaultsTrial runs one fleet rollout at one fault rate.
func reconfigFaultsTrial(img *faultImages, trialSeed int64, rateIdx int, rate float64) (faultPoint, error) {
	fleet := mgmt.NewFleet()
	mods := make([]*core.Module, faultFleetModules)
	sims := make([]*netsim.Simulator, faultFleetModules)
	injs := make([]*faults.Injector, faultFleetModules)
	names := make([]string, faultFleetModules)

	rates := faultBaseRates.Scaled(rate)
	wedgeProb := faultWedgeProb * rate
	powerCutProb := faultPowerCutProb * rate

	for i := 0; i < faultFleetModules; i++ {
		name := fmt.Sprintf("sfp-%02d", i)
		names[i] = name
		lane := int64(rateIdx*64 + i)
		sim := netsim.New(runner.TrialSeed(trialSeed, int(1000+lane)))
		inj := faults.New(runner.TrialSeed(trialSeed, int(2000+lane)), rates)
		mod := core.NewModule(core.Config{
			Sim: sim, Name: name, DeviceID: uint32(i + 1),
			Shell: hls.TwoWayCore, Registry: img.registry,
			AuthKey: build.DefaultAuthKey,
		})
		if _, err := mod.Install(0, img.golden); err != nil {
			return faultPoint{}, err
		}
		if _, err := mod.Install(1, img.v1); err != nil {
			return faultPoint{}, err
		}
		if err := mod.BootSync(1); err != nil {
			return faultPoint{}, err
		}
		// Wedge model: a non-golden design fails its post-reconfigure
		// health probe with probability wedgeProb; golden never wedges.
		mod.SetHealthProbe(func(slot int) bool {
			if bs, _, err := mod.Flash.LoadBitstream(slot); err == nil && bs.Golden() {
				return true
			}
			return !inj.Roll(wedgeProb)
		})
		agent := mgmt.NewAgent(mod)
		// The transport serves the agent then drains the module's own
		// simulator, so reboot/watchdog/fallback chains complete within
		// the request. A commit may be followed by a power cut that
		// corrupts the target slot before the scheduled reboot reads it.
		base := mgmt.TransportFunc(func(req []byte) ([]byte, error) {
			resp := agent.Handle(req)
			if msg, derr := mgmt.DecodeMessage(req); derr == nil && msg.Type == mgmt.MsgXferCommit {
				if inj.Roll(powerCutProb) {
					if err := inj.PowerCut(mod.Flash, faultTargetSlot, 0.5); err != nil {
						return nil, err
					}
				}
			}
			sim.Run()
			return resp, nil
		})
		fleet.Add(name, inj.WrapTransport(base))
		mods[i], sims[i], injs[i] = mod, sim, inj
	}
	fleet.SetRetryPolicy(mgmt.RetryPolicy{MaxAttempts: faultRetryAttempts})

	rep := fleet.PushCanary(img.signedV2, mgmt.CanaryConfig{
		TargetSlot:     faultTargetSlot,
		Canaries:       faultCanaries,
		WaveSize:       faultWaveSize,
		MaxFailureFrac: faultMaxFailFrac,
	})

	var p faultPoint
	if rep.RolledBack {
		p.rollback = 1
	}
	for i, mod := range mods {
		sims[i].Run()
		if mod.Running() {
			p.avail++
			if mod.ActiveSlot() == faultTargetSlot {
				p.upgraded++
			}
		}
		st := mod.Stats()
		p.golden += float64(st.GoldenFallbacks)
		p.watchdog += float64(st.WatchdogTrips)
		p.recoveryMs += float64(sims[i].Now()) / float64(netsim.Millisecond)
		if c, ok := fleet.Client(names[i]); ok {
			p.retries += float64(c.Retries())
		}
		p.injected += float64(injs[i].Stats().Total())
	}
	p.avail /= faultFleetModules
	p.upgraded /= faultFleetModules
	p.recoveryMs /= faultFleetModules
	return p, nil
}

// faultRateFracs are the sweep points as fractions of the max rate.
var faultRateFracs = []float64{0, 0.25, 0.5, 1.0}

// ReconfigUnderFaultsExperiment sweeps fault rates over trials independent
// seeds (workers bounded by parallelism; 0 = GOMAXPROCS). maxRate <= 0
// defaults to 0.2.
func ReconfigUnderFaultsExperiment(rootSeed int64, trials, parallelism int, maxRate float64) (ReconfigUnderFaultsResult, error) {
	return faultsSweep(exp.RunContext{
		Seed: rootSeed, Trials: trials, Parallelism: parallelism, FaultRate: maxRate,
	})
}

func faultsSweep(ctx exp.RunContext) (ReconfigUnderFaultsResult, error) {
	maxRate := ctx.FaultRate
	if maxRate <= 0 {
		maxRate = 0.2
	}
	img, err := buildFaultImages()
	if err != nil {
		return ReconfigUnderFaultsResult{}, err
	}
	tr, err := exp.RunTrials(ctx, func(_ int, trialSeed int64) ([]faultPoint, error) {
		pts := make([]faultPoint, len(faultRateFracs))
		for ri, frac := range faultRateFracs {
			p, err := reconfigFaultsTrial(img, trialSeed, ri, frac*maxRate)
			if err != nil {
				return nil, err
			}
			pts[ri] = p
		}
		return pts, nil
	})
	if err != nil {
		return ReconfigUnderFaultsResult{}, err
	}
	res := ReconfigUnderFaultsResult{Trials: tr.N(), Modules: faultFleetModules, MaxRate: maxRate}
	for ri, frac := range faultRateFracs {
		res.Points = append(res.Points, FaultRatePoint{
			Rate:            frac * maxRate,
			Availability:    tr.Metric(func(r []faultPoint) float64 { return r[ri].avail }),
			UpgradeRate:     tr.Metric(func(r []faultPoint) float64 { return r[ri].upgraded }),
			RecoveryMs:      tr.Metric(func(r []faultPoint) float64 { return r[ri].recoveryMs }),
			GoldenFallbacks: tr.Metric(func(r []faultPoint) float64 { return r[ri].golden }),
			WatchdogTrips:   tr.Metric(func(r []faultPoint) float64 { return r[ri].watchdog }),
			CanaryRollbacks: tr.Metric(func(r []faultPoint) float64 { return r[ri].rollback }),
			ClientRetries:   tr.Metric(func(r []faultPoint) float64 { return r[ri].retries }),
			InjectedFaults:  tr.Metric(func(r []faultPoint) float64 { return r[ri].injected }),
		})
	}
	return res, nil
}

// Render formats the chaos sweep.
func (r ReconfigUnderFaultsResult) Render() string {
	t := exp.NewTable("Fault rate", "Availability", "Upgraded", "Recovery (ms)",
		"Golden fb", "Watchdog", "Rollbacks", "Retries", "Faults")
	for _, p := range r.Points {
		t.Add(fmt.Sprintf("%.3f", p.Rate),
			fmtCI(p.Availability, 3),
			fmtCI(p.UpgradeRate, 3),
			fmtCI(p.RecoveryMs, 1),
			fmtCI(p.GoldenFallbacks, 2),
			fmtCI(p.WatchdogTrips, 2),
			fmtCI(p.CanaryRollbacks, 2),
			fmtCI(p.ClientRetries, 1),
			fmtCI(p.InjectedFaults, 1))
	}
	head := fmt.Sprintf(
		"Reconfiguration under faults (§4.2): %d modules, canary rollout (K=%d, waves of %d, rollback >%.0f%% failures), %d trials\n",
		r.Modules, faultCanaries, faultWaveSize, faultMaxFailFrac*100, r.Trials)
	return head + t.String()
}

func runFaults(ctx exp.RunContext) (exp.Result, error) {
	r, err := faultsSweep(ctx)
	if err != nil {
		return nil, err
	}
	env := exp.Envelope{Name: "faults", Params: ctx.Params(), Detail: r}
	if n := len(r.Points); n > 0 {
		last := r.Points[n-1]
		env.Metrics = []exp.Metric{
			exp.Scalar("max_rate", "", r.MaxRate),
			exp.FromSummary("availability_at_max", "frac", last.Availability),
			exp.FromSummary("injected_faults_at_max", "", last.InjectedFaults),
		}
	}
	return exp.NewResult(env, r.Render), nil
}
