package opt_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"testing"

	"flexsfp/internal/apps"
	"flexsfp/internal/core"
	"flexsfp/internal/opt"
	"flexsfp/internal/ppe"
)

// equivFrames is the per-app corpus size for the optimizer-equivalence
// property (the acceptance bar is >= 10k randomized frames per app).
const equivFrames = 10_000

func canonicalApp(t *testing.T, name string, optimize bool) core.App {
	t.Helper()
	reg := apps.NewRegistry()
	app, err := reg.New(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := apps.CanonicalConfig(name)
	if err != nil {
		t.Fatal(err)
	}
	if optimize {
		if xc, ok := cfg.(apps.XDPConfig); ok {
			// The XDP app is the one whose behavioral program the
			// instruction passes actually rewrite; opt in here.
			xc.Optimize = true
			cfg = xc
		}
	}
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Configure(raw); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return app
}

// TestOptimizerVerdictEquivalenceAllApps runs every registry app twice —
// once plain, once through the full optimizer (structural passes on the
// compiled program; instruction passes for the XDP app) — over the same
// randomized frame stream, and demands identical verdicts and identical
// (possibly rewritten) packet bytes at every step. Stateful apps see the
// same stream in the same order, so their state evolution must match
// too. Subtests run in parallel; the race detector covers the suite via
// RACE_PKGS.
func TestOptimizerVerdictEquivalenceAllApps(t *testing.T) {
	reg := apps.NewRegistry()
	names := reg.Names()
	sort.Strings(names)
	for seed, name := range names {
		name, seed := name, int64(seed)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base := canonicalApp(t, name, false)
			tuned := canonicalApp(t, name, true)
			progA := base.Program()
			progB, rep := opt.Optimize(tuned.Program(), opt.Options{})
			if progB.Stages > progA.Stages {
				t.Fatalf("optimizer increased stages: %d -> %d", progA.Stages, progB.Stages)
			}
			if rep.DepthAfter > rep.DepthBefore {
				t.Fatalf("optimizer increased depth: %+v", rep)
			}
			hA, hB := progA.Handler, progB.Handler
			rng := rand.New(rand.NewSource(1000 + seed))
			for i := 0; i < equivFrames; i++ {
				n := rng.Intn(220)
				frame := make([]byte, n)
				rng.Read(frame)
				a := append([]byte(nil), frame...)
				b := append([]byte(nil), frame...)
				dir := ppe.Direction(i % 2)
				ts := uint64(i) * 100
				ctxA := &ppe.Ctx{Data: a, Dir: dir, TimestampNs: ts}
				ctxB := &ppe.Ctx{Data: b, Dir: dir, TimestampNs: ts}
				vA := hA.HandlePacket(ctxA)
				vB := hB.HandlePacket(ctxB)
				if vA != vB {
					t.Fatalf("frame %d: verdict %v (plain) vs %v (optimized)", i, vA, vB)
				}
				if !bytes.Equal(ctxA.Data, ctxB.Data) {
					t.Fatalf("frame %d: rewritten bytes diverge", i)
				}
				if ctxA.RedirectPort != ctxB.RedirectPort {
					t.Fatalf("frame %d: redirect port %d vs %d", i, ctxA.RedirectPort, ctxB.RedirectPort)
				}
			}
		})
	}
}
