package core

import (
	"math"
	"strings"
	"testing"
)

func TestScaledModelReducesToCalibratedBase(t *testing.T) {
	// At the prototype operating point the extended model must equal the
	// paper-calibrated 1.52 W exactly.
	p := ScaledPeakPowerW(156_250_000, 64, 1, 1, Node28)
	if math.Abs(p-1.52) > 0.001 {
		t.Errorf("base point = %.3f W, want 1.52", p)
	}
}

func TestEngineCapacity(t *testing.T) {
	// 64b @ 156.25 MHz: 9 cycles/frame → 17.36 Mpps → 11.67 G wire rate.
	c := EngineCapacityGbps(156_250_000, 64)
	if math.Abs(c-11.67) > 0.05 {
		t.Errorf("capacity = %.2f Gb/s", c)
	}
	// Monotone in width and clock.
	if EngineCapacityGbps(156_250_000, 128) <= c {
		t.Error("capacity not monotone in width")
	}
	if EngineCapacityGbps(312_500_000, 64) <= c {
		t.Error("capacity not monotone in clock")
	}
}

func TestPlan10GFitsSFPPlusAt28nm(t *testing.T) {
	// The paper's prototype point: 10G in an SFP+ on mature silicon.
	p := PlanFormFactor(10, Node28)
	if !p.Feasible {
		t.Fatal("10G infeasible")
	}
	if p.Module.Name != "SFP+" {
		t.Errorf("10G module = %s, want SFP+", p.Module.Name)
	}
	if p.PeakW > 3 {
		t.Errorf("10G peak = %.2f W", p.PeakW)
	}
}

func TestPlan100GNeedsBiggerModule(t *testing.T) {
	// §5.3/§6: 100G does not fit the SFP envelope even on newer silicon;
	// QSFP28-or-larger is required.
	for _, node := range []ProcessNode{Node28, Node16, Node7} {
		p := PlanFormFactor(100, node)
		if !p.Feasible {
			if node == Node7 {
				t.Errorf("100G infeasible even at 7nm: %+v", p)
			}
			continue
		}
		if p.Module.Name == "SFP+" || p.Module.Name == "SFP28" {
			t.Errorf("100G at %s claimed to fit %s", node.Name, p.Module.Name)
		}
	}
}

func TestPlan400GNeedsDoubleDensity(t *testing.T) {
	p := PlanFormFactor(400, Node7)
	if !p.Feasible {
		t.Fatalf("400G infeasible at 7nm: %+v", p)
	}
	if p.Module.Name != "QSFP-DD" && p.Module.Name != "OSFP" {
		t.Errorf("400G module = %s, want QSFP-DD/OSFP", p.Module.Name)
	}
	// And 28 nm silicon cannot do it inside any envelope.
	p28 := PlanFormFactor(400, Node28)
	if p28.Feasible && p28.Module.Name != "OSFP" && p28.Module.Name != "QSFP-DD" {
		t.Errorf("400G at 28nm = %+v", p28)
	}
}

func TestNewerSiliconLowersPower(t *testing.T) {
	a := PlanFormFactor(100, Node16)
	b := PlanFormFactor(100, Node7)
	if a.Feasible && b.Feasible && b.PeakW >= a.PeakW {
		t.Errorf("7nm plan (%.2f W) not below 16nm (%.2f W)", b.PeakW, a.PeakW)
	}
}

func TestPlannerPrefersLowestPower(t *testing.T) {
	// For 25G at 28nm the planner must pick some config with capacity
	// ≥ 25 and not waste power (e.g. not 1024b × 4 engines).
	p := PlanFormFactor(25, Node28)
	if !p.Feasible {
		t.Fatal("25G infeasible at 28nm")
	}
	if p.CapacityGbps < 25 {
		t.Errorf("capacity = %.1f", p.CapacityGbps)
	}
	// Any strictly larger config must not be cheaper.
	bigger := ScaledPeakPowerW(p.ClockHz, p.DatapathBits*2, p.Engines, 1, Node28)
	if bigger < p.PeakW {
		t.Errorf("planner missed a cheaper config: %.2f vs %.2f", bigger, p.PeakW)
	}
}

func TestPlanString(t *testing.T) {
	p := PlanFormFactor(10, Node28)
	if !strings.Contains(p.String(), "SFP+") {
		t.Errorf("String = %q", p.String())
	}
	inf := FormFactorPlan{TargetGbps: 9999, Node: Node28}
	if !strings.Contains(inf.String(), "infeasible") {
		t.Errorf("String = %q", inf.String())
	}
}

func TestLanesFor(t *testing.T) {
	cases := map[float64]int{10: 1, 25: 1, 50: 2, 100: 4, 200: 4, 400: 8}
	for rate, want := range cases {
		if got := lanesFor(rate); got != want {
			t.Errorf("lanesFor(%v) = %d, want %d", rate, got, want)
		}
	}
}
