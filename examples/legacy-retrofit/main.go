// Legacy retrofit: the §2.1 telecom scenario. A fixed-function L2
// aggregation switch connects three FTTH subscribers to a metro uplink.
// The operator needs per-subscriber policies — IPv6 filtering, DoH
// blocking, rate limiting — that the switch cannot do. Instead of
// replacing the chassis, each subscriber port's SFP is swapped for a
// FlexSFP running the right app: a drop-in upgrade with no switch-OS
// change.
//
//	go run ./examples/legacy-retrofit
package main

import (
	"fmt"
	"log"
	"net/netip"

	"flexsfp"
	"flexsfp/internal/apps"
	"flexsfp/internal/core"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
	"flexsfp/internal/switchsim"
	"flexsfp/internal/trafficgen"
)

const tenGig = 10_000_000_000

func main() {
	sim := flexsfp.NewSim(1)

	// Legacy switch: port 0 = uplink, ports 1-3 = subscribers.
	sw := switchsim.New(sim, "agg-metro-17", 4)
	uplink := switchsim.NewHost("metro-core", packet.MustMAC("02:ff:00:00:00:01"))
	subs := []*switchsim.Host{
		switchsim.NewHost("subscriber-a", packet.MustMAC("02:aa:00:00:00:01")),
		switchsim.NewHost("subscriber-b", packet.MustMAC("02:aa:00:00:00:02")),
		switchsim.NewHost("subscriber-c", packet.MustMAC("02:aa:00:00:00:03")),
	}

	// Per-subscriber policy, each as one FlexSFP app.
	policies := []struct {
		app  string
		cfg  any
		desc string
	}{
		{"sanitize", apps.SanitizeConfig{DropIPv6: true, VerifyChecksums: true},
			"IPv4-only access + malformed-packet filtering"},
		{"dohblock", apps.DoHBlockConfig{
			BlockedDomains: []string{"ads.example", "tracker.example"},
			ResolverIPs:    []string{"1.1.1.1"},
		}, "DNS/DoH blocking"},
		{"ratelimit", apps.RateLimitConfig{
			DefaultRateBps: 50_000_000, DefaultBurstBits: 1_000_000,
		}, "50 Mb/s per-subscriber policing"},
	}

	// Uplink keeps its standard SFP; subscriber ports get FlexSFPs.
	sw.Cage(0).Insert(newStandardSFP(sim))
	switchsim.Fiber(sim, sw.Cage(0), uplink, tenGig, 1000)
	for i, p := range policies {
		mod, _, err := flexsfp.BuildModule(sim, flexsfp.ModuleSpec{
			Name: fmt.Sprintf("flex-port-%d", i+1), DeviceID: uint32(i + 1),
			Shell: flexsfp.TwoWayCore, App: p.app, Config: p.cfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		sw.Cage(i + 1).Insert(mod)
		switchsim.Fiber(sim, sw.Cage(i+1), subs[i], tenGig, 5000)
		fmt.Printf("port %d: FlexSFP running %q (%s)\n", i+1, p.app, p.desc)
	}

	// Prime MAC learning.
	for _, s := range subs {
		s.Send(packet.MustBuild(packet.Spec{
			SrcMAC: s.MAC, DstMAC: uplink.MAC,
			SrcIP: netip.MustParseAddr("10.0.0.9"), DstIP: netip.MustParseAddr("10.0.0.1"),
			SrcPort: 1, DstPort: 2, PadTo: 64,
		}))
	}
	sim.Run()
	uplinkBase := uplink.RxFrames

	fmt.Println("\n--- Policy enforcement ---")

	// Subscriber A tries IPv6: dropped at the port.
	subs[0].Send(packet.MustBuild(packet.Spec{
		SrcMAC: subs[0].MAC, DstMAC: uplink.MAC,
		SrcIP: netip.MustParseAddr("2001:db8::1"), DstIP: netip.MustParseAddr("2001:db8::99"),
		SrcPort: 1000, DstPort: 80, PadTo: 64,
	}))
	sim.Run()
	fmt.Printf("subscriber-a IPv6 packet:    reached uplink: %v (policy: filtered)\n",
		uplink.RxFrames > uplinkBase)

	// Subscriber A's IPv4 still works.
	subs[0].Send(packet.MustBuild(packet.Spec{
		SrcMAC: subs[0].MAC, DstMAC: uplink.MAC,
		SrcIP: netip.MustParseAddr("100.64.0.1"), DstIP: netip.MustParseAddr("198.51.100.1"),
		SrcPort: 1000, DstPort: 80, PadTo: 64,
	}))
	sim.Run()
	fmt.Printf("subscriber-a IPv4 packet:    reached uplink: %v\n", uplink.RxFrames > uplinkBase)
	uplinkBase = uplink.RxFrames

	// Subscriber B queries a blocked tracker domain: dropped.
	q := &packet.DNS{ID: 7, RD: true, Questions: []packet.DNSQuestion{
		{Name: "telemetry.tracker.example", Type: packet.DNSTypeA, Class: packet.DNSClassIN}}}
	ip := &packet.IPv4{TTL: 64, Protocol: packet.IPProtocolUDP,
		SrcIP: netip.MustParseAddr("100.64.0.2"), DstIP: netip.MustParseAddr("9.9.9.9")}
	udp := &packet.UDP{SrcPort: 5353, DstPort: packet.PortDNS}
	if err := udp.SetNetworkLayerForChecksum(ip.SrcIP, ip.DstIP); err != nil {
		log.Fatal(err)
	}
	buf := packet.NewSerializeBuffer()
	if err := packet.SerializeLayers(buf,
		packet.SerializeOptions{FixLengths: true, ComputeChecksums: true},
		&packet.Ethernet{SrcMAC: subs[1].MAC, DstMAC: uplink.MAC, EtherType: packet.EtherTypeIPv4},
		ip, udp, q); err != nil {
		log.Fatal(err)
	}
	subs[1].Send(append([]byte(nil), buf.Bytes()...))
	sim.Run()
	fmt.Printf("subscriber-b tracker DNS:    reached uplink: %v (policy: blocked)\n",
		uplink.RxFrames > uplinkBase)

	// Subscriber C blasts 200 Mb/s against a 50 Mb/s policy.
	gen := trafficgen.New(sim, trafficgen.Config{
		PPS:    200_000_000.0 / (1500 * 8), // 200 Mb/s of 1500B frames
		Sizes:  []trafficgen.IMIXEntry{{Size: 1500, Weight: 1}},
		SrcMAC: subs[2].MAC, DstMAC: uplink.MAC,
		SrcIP: netip.MustParseAddr("100.64.0.3"), DstIP: netip.MustParseAddr("198.51.100.1"),
	}, func(b []byte) bool { return subs[2].Send(b) })
	before := uplink.RxBytes
	gen.Run(0)
	sim.RunFor(100 * netsim.Millisecond)
	gen.Stop()
	sim.Run()
	gotMbps := float64(uplink.RxBytes-before) * 8 / 0.1 / 1e6
	fmt.Printf("subscriber-c 200 Mb/s flood: %.1f Mb/s passed the policer (policy: 50 Mb/s)\n", gotMbps)

	// Observability the legacy switch never had: per-port PPE counters.
	fmt.Println("\n--- Per-port visibility (read from each module's engine) ---")
	for i := 1; i <= 3; i++ {
		mod, ok := sw.Cage(i).Transceiver().(*core.Module)
		if !ok {
			continue
		}
		st := mod.Engine().Stats()
		fmt.Printf("port %d (%s): in=%d pass=%d drop=%d; module power %.2f W\n",
			i, mod.App().Program().Name, st.In, st.Pass, st.Drop, mod.PowerW())
	}
	fmt.Printf("switch fabric: %d forwarded, %d flooded, %d dropped; MAC table %d entries\n",
		sw.Stats().Forwarded, sw.Stats().Flooded, sw.Stats().Dropped, sw.MACTableSize())
	fmt.Printf("total transceiver power: %.2f W across %d ports\n",
		sw.TotalTransceiverPowerW(), sw.Ports())
}

func newStandardSFP(sim *netsim.Simulator) switchsim.Transceiver {
	return core.NewStandardSFP(sim)
}
