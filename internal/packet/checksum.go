package packet

import "encoding/binary"

// Checksum implements the Internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	return finishChecksum(sumBytes(0, data))
}

func sumBytes(sum uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

func finishChecksum(sum uint32) uint16 {
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial sum of the IPv4/IPv6 pseudo header
// used by TCP, UDP and (for IPv6) ICMP checksums.
func pseudoHeaderSum(srcIP, dstIP []byte, proto IPProtocol, length int) uint32 {
	sum := sumBytes(0, srcIP)
	sum = sumBytes(sum, dstIP)
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// TransportChecksum computes the L4 checksum of segment carried between
// srcIP and dstIP with protocol proto. srcIP/dstIP must both be 4-byte or
// both 16-byte slices.
func TransportChecksum(segment, srcIP, dstIP []byte, proto IPProtocol) uint16 {
	sum := pseudoHeaderSum(srcIP, dstIP, proto, len(segment))
	sum = sumBytes(sum, segment)
	return finishChecksum(sum)
}
