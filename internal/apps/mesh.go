package apps

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/netip"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// The mesh app is the tunnel app generalized to many remotes: the overlay
// control plane (internal/overlay) programs a prefix→peer route table and
// a peer→encap-state table, and the datapath maps each edge frame's
// destination /24 to a per-peer GRE or VXLAN wrap. The return path decaps
// traffic addressed to this cable's own endpoint. A peer withdrawn by the
// rendezvous plane disappears from mesh_peers, and any route still naming
// it fails closed (MeshNoPeer drop) — the datapath half of the "no frame
// delivered to a withdrawn peer" invariant.

// Mesh table names (mgmt-visible).
const (
	MeshRouteTable = "mesh_routes"
	MeshPeerTable  = "mesh_peers"
)

// Mesh table capacities: sized for datacenter-pod-scale fabrics (a /24
// per rack, tens of cables) while staying a rounding error on the
// MPF200T next to the NAT table.
const (
	MeshRouteTableSize = 1024
	MeshPeerTableSize  = 64
)

// Per-peer encap modes stored in mesh_peers values.
const (
	MeshModeGRE uint8 = iota + 1
	MeshModeVXLAN
)

// meshPeerValueLen is the encoded MeshPeer size: mode(1) + ip(4) +
// mac(6) + vni(4) + grekey(4).
const meshPeerValueLen = 19

// MeshPeer is the decoded mesh_peers table value: everything the
// datapath needs to encapsulate toward one remote cable.
type MeshPeer struct {
	Mode   uint8
	IP     [4]byte
	MAC    [6]byte
	VNI    uint32
	GREKey uint32
}

// Encode packs the peer into the mesh_peers value image.
func (p MeshPeer) Encode() [meshPeerValueLen]byte {
	var b [meshPeerValueLen]byte
	b[0] = p.Mode
	copy(b[1:5], p.IP[:])
	copy(b[5:11], p.MAC[:])
	binary.BigEndian.PutUint32(b[11:15], p.VNI)
	binary.BigEndian.PutUint32(b[15:19], p.GREKey)
	return b
}

// DecodeMeshPeer unpacks a mesh_peers value image.
func DecodeMeshPeer(b []byte) (MeshPeer, error) {
	if len(b) != meshPeerValueLen {
		return MeshPeer{}, fmt.Errorf("mesh: peer value is %d bytes, want %d", len(b), meshPeerValueLen)
	}
	p := MeshPeer{Mode: b[0]}
	copy(p.IP[:], b[1:5])
	copy(p.MAC[:], b[5:11])
	p.VNI = binary.BigEndian.Uint32(b[11:15])
	p.GREKey = binary.BigEndian.Uint32(b[15:19])
	return p, nil
}

// MeshRouteKey masks an inner destination IPv4 address to the /24 route
// key the mesh_routes table is indexed by.
func MeshRouteKey(ip [4]byte) [4]byte {
	ip[3] = 0
	return ip
}

// MeshPeerKey is the mesh_peers key image for a peer id.
func MeshPeerKey(id uint16) [2]byte {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], id)
	return b
}

// MeshRouteValue is the mesh_routes value image for a peer id.
func MeshRouteValue(id uint16) [2]byte { return MeshPeerKey(id) }

// MeshConfig configures one cable's overlay endpoint. Mode/VNI/GREKey
// describe the *receive* side — what remote peers use when encapsulating
// toward this cable; the transmit side is fully peer-table-driven.
type MeshConfig struct {
	Mode     string `json:"mode"` // "gre" or "vxlan"
	LocalIP  string `json:"local_ip"`
	LocalMAC string `json:"local_mac"`
	VNI      uint32 `json:"vni,omitempty"`
	GREKey   uint32 `json:"gre_key,omitempty"`
	TTL      uint8  `json:"ttl,omitempty"`
	MTU      int    `json:"mtu,omitempty"`
}

// Mesh counter indexes (bank "mesh").
const (
	MeshEncapped = iota
	MeshDecapped
	MeshPassed
	MeshErrors
	MeshTooBig
	// MeshNoRoute: edge frames whose destination matches no overlay
	// prefix; they pass untouched (underlay/uplink traffic).
	MeshNoRoute
	// MeshNoPeer: a route named a peer absent from mesh_peers — a
	// withdrawn or not-yet-synced peer. Fails closed.
	MeshNoPeer
	meshCounters
)

// meshEnc is the cached per-peer serialization state, rebuilt from the
// mesh_peers table whenever its generation moves. The expensive pieces
// (layer structs, the UDP pseudo-header binding, the stack slice) are
// built here at control-plane rate so the per-frame path is alloc-free.
type meshEnc struct {
	mode  uint8
	eth   packet.Ethernet
	ip    packet.IPv4
	gre   packet.GRE
	udp   packet.UDP
	vx    packet.VXLAN
	stack []packet.SerializableLayer
}

type meshApp struct {
	prog   *ppe.Program
	state  *ppe.State
	routes *ppe.Table
	peers  *ppe.Table
	ctr    *ppe.CounterBank

	mode     string
	local    netip.Addr
	local4   [4]byte
	localMAC packet.MAC
	vni      uint32
	greKey   uint32
	ttl      uint8
	mtu      int

	buf      *packet.SerializeBuffer
	v        packet.View
	ring     *frameRing
	payload  packet.Payload
	routeKey [4]byte

	cache    map[uint16]*meshEnc
	cacheGen uint64
}

// NewMesh builds an overlay mesh endpoint instance.
func NewMesh() *meshApp {
	a := &meshApp{state: ppe.NewState(), buf: packet.NewSerializeBuffer()}
	routeSpec := ppe.TableSpec{Name: MeshRouteTable, Kind: ppe.TableExact, KeyBits: 32, ValueBits: 16, Size: MeshRouteTableSize}
	peerSpec := ppe.TableSpec{Name: MeshPeerTable, Kind: ppe.TableExact, KeyBits: 16, ValueBits: meshPeerValueLen * 8, Size: MeshPeerTableSize}
	a.routes = a.state.AddTable(routeSpec)
	a.peers = a.state.AddTable(peerSpec)
	a.ctr = a.state.AddCounters("mesh", meshCounters)
	a.prog = &ppe.Program{
		Name:        "mesh",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeIPv4, packet.LayerTypeUDP},
		Tables:      []ppe.TableSpec{routeSpec, peerSpec},
		Actions: []ppe.ActionSpec{
			{Kind: ppe.ActionHash, Bits: 32},  // route lookup
			{Kind: ppe.ActionHash, Bits: 16},  // peer lookup + sport entropy
			{Kind: ppe.ActionPush, Bytes: 50}, // worst case: VXLAN outer stack
			{Kind: ppe.ActionPop, Bytes: 50},
			{Kind: ppe.ActionChecksum},
			{Kind: ppe.ActionCounterBank, Count: meshCounters},
		},
		Stages:  4,
		Handler: ppe.HandlerFunc(a.handle),
	}
	return a
}

// Program implements core.App.
func (a *meshApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *meshApp) State() *ppe.State { return a.state }

// Configure implements core.App.
func (a *meshApp) Configure(config []byte) error {
	var cfg MeshConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return fmt.Errorf("mesh: %w", err)
	}
	switch cfg.Mode {
	case TunnelGRE, TunnelVXLAN:
	default:
		return fmt.Errorf("mesh: unknown mode %q", cfg.Mode)
	}
	local, err := netip.ParseAddr(cfg.LocalIP)
	if err != nil {
		return fmt.Errorf("mesh local: %w", err)
	}
	if !local.Is4() {
		return fmt.Errorf("mesh: IPv4 endpoint required")
	}
	lmac, err := packet.ParseMAC(cfg.LocalMAC)
	if err != nil {
		return fmt.Errorf("mesh local MAC: %w", err)
	}
	a.mode, a.local, a.local4, a.localMAC = cfg.Mode, local, local.As4(), lmac
	a.vni, a.greKey = cfg.VNI, cfg.GREKey
	a.ttl = cfg.TTL
	if a.ttl == 0 {
		a.ttl = 64
	}
	a.mtu = cfg.MTU
	if a.mtu == 0 {
		a.mtu = 1518
	}
	if a.ring == nil {
		a.ring = newFrameRing()
	}
	// Build the (empty) cache eagerly so the first frame is already on
	// the steady-state path.
	a.cache = map[uint16]*meshEnc{}
	a.cacheGen = a.peers.Generation()
	a.rebuildCache()
	return nil
}

// rebuildCache re-derives per-peer encap state from the mesh_peers
// table. Runs at control-plane rate (table generation changes), never
// per frame. The generation is read before the snapshot so a concurrent
// table write at worst forces one extra rebuild, never a stale cache.
func (a *meshApp) rebuildCache() {
	gen := a.peers.Generation()
	cache := make(map[uint16]*meshEnc, a.peers.Len())
	for _, e := range a.peers.Snapshot() {
		if len(e.Key) != 2 {
			continue
		}
		id := binary.BigEndian.Uint16(e.Key)
		p, err := DecodeMeshPeer(e.Value)
		if err != nil {
			continue
		}
		enc, err := a.buildEnc(p)
		if err != nil {
			continue
		}
		cache[id] = enc
	}
	a.cache, a.cacheGen = cache, gen
}

func (a *meshApp) buildEnc(p MeshPeer) (*meshEnc, error) {
	peerIP := netip.AddrFrom4(p.IP)
	e := &meshEnc{mode: p.Mode}
	e.eth = packet.Ethernet{SrcMAC: a.localMAC, DstMAC: packet.MAC(p.MAC), EtherType: packet.EtherTypeIPv4}
	e.ip = packet.IPv4{TTL: a.ttl, SrcIP: a.local, DstIP: peerIP, DontFrag: true}
	switch p.Mode {
	case MeshModeGRE:
		e.ip.Protocol = packet.IPProtocolGRE
		e.gre = packet.GRE{Protocol: packet.EtherTypeTransparentEthernet}
		if p.GREKey != 0 {
			e.gre.KeyPresent = true
			e.gre.Key = p.GREKey
		}
		e.stack = []packet.SerializableLayer{&e.eth, &e.ip, &e.gre, &a.payload}
	case MeshModeVXLAN:
		e.ip.Protocol = packet.IPProtocolUDP
		e.udp = packet.UDP{DstPort: packet.PortVXLAN}
		if err := e.udp.SetNetworkLayerForChecksum(a.local, peerIP); err != nil {
			return nil, err
		}
		e.vx = packet.VXLAN{VNI: p.VNI}
		e.stack = []packet.SerializableLayer{&e.eth, &e.ip, &e.udp, &e.vx, &a.payload}
	default:
		return nil, fmt.Errorf("mesh: unknown peer mode %d", p.Mode)
	}
	return e, nil
}

func (a *meshApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	if a.mode == "" {
		return ppe.VerdictPass
	}
	switch ctx.Dir {
	case ppe.DirEdgeToOptical:
		return a.handleEgress(ctx)
	case ppe.DirOpticalToEdge:
		return a.handleIngress(ctx)
	}
	return ppe.VerdictPass
}

// handleEgress routes an edge frame into the overlay: dst /24 → peer id
// → cached encap state.
func (a *meshApp) handleEgress(ctx *ppe.Ctx) ppe.Verdict {
	if !a.v.Parse(ctx.Data) || !a.v.IsIPv4 {
		a.ctr.Inc(MeshPassed, len(ctx.Data))
		return ppe.VerdictPass
	}
	copy(a.routeKey[:], a.v.DstIPv4())
	a.routeKey[3] = 0
	val, ok := a.routes.Lookup(a.routeKey[:])
	if !ok || len(val) != 2 {
		a.ctr.Inc(MeshNoRoute, len(ctx.Data))
		return ppe.VerdictPass
	}
	if gen := a.peers.Generation(); gen != a.cacheGen {
		a.rebuildCache()
	}
	enc, ok := a.cache[binary.BigEndian.Uint16(val)]
	if !ok {
		a.ctr.Inc(MeshNoPeer, len(ctx.Data))
		return ppe.VerdictDrop
	}
	if enc.mode == MeshModeVXLAN {
		enc.udp.SrcPort = uint16(49152 + packet.FNV64(ctx.Data[:min(34, len(ctx.Data))])%16384)
	}
	a.payload = packet.Payload(ctx.Data)
	opts := packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := packet.SerializeLayers(a.buf, opts, enc.stack...); err != nil {
		a.ctr.Inc(MeshErrors, len(ctx.Data))
		return ppe.VerdictDrop
	}
	if a.buf.Len() > a.mtu {
		// Like the tunnel app, the counter records the would-be encapped
		// size so MTU headroom is measurable.
		a.ctr.Inc(MeshTooBig, a.buf.Len())
		return ppe.VerdictDrop
	}
	out := a.ring.take(a.buf.Len())
	copy(out, a.buf.Bytes())
	ctx.Data = out
	a.ctr.Inc(MeshEncapped, len(out))
	return ppe.VerdictPass
}

// handleIngress decaps overlay traffic addressed to this cable's own
// endpoint; everything else passes untouched.
func (a *meshApp) handleIngress(ctx *ppe.Ctx) ppe.Verdict {
	data := ctx.Data
	if !a.v.Parse(data) || !a.v.IsIPv4 {
		a.ctr.Inc(MeshPassed, len(data))
		return ppe.VerdictPass
	}
	v := &a.v
	if [4]byte(v.DstIPv4()) != a.local4 {
		a.ctr.Inc(MeshPassed, len(data))
		return ppe.VerdictPass
	}
	l4 := v.L3Off + v.IPv4HeaderLen()
	switch {
	case a.mode == TunnelGRE && v.Proto == packet.IPProtocolGRE:
		var gre packet.GRE
		if gre.DecodeFromBytes(data[l4:]) != nil ||
			gre.Protocol != packet.EtherTypeTransparentEthernet {
			a.ctr.Inc(MeshErrors, len(data))
			return ppe.VerdictDrop
		}
		if a.greKey != 0 && (!gre.KeyPresent || gre.Key != a.greKey) {
			// Claims our endpoint without our key — corrupt or spoofed.
			a.ctr.Inc(MeshErrors, len(data))
			return ppe.VerdictDrop
		}
		inner := gre.LayerPayload()
		out := a.ring.take(len(inner))
		copy(out, inner)
		ctx.Data = out
		a.ctr.Inc(MeshDecapped, len(out))
		return ppe.VerdictPass
	case a.mode == TunnelVXLAN && v.Proto == packet.IPProtocolUDP && v.DstPort == packet.PortVXLAN:
		if len(data) < l4+16 {
			a.ctr.Inc(MeshErrors, len(data))
			return ppe.VerdictDrop
		}
		var vx packet.VXLAN
		if vx.DecodeFromBytes(data[l4+8:]) != nil {
			a.ctr.Inc(MeshErrors, len(data))
			return ppe.VerdictDrop
		}
		if vx.VNI != a.vni {
			// A foreign tenant's segment transiting us: not ours to open.
			a.ctr.Inc(MeshPassed, len(data))
			return ppe.VerdictPass
		}
		inner := vx.LayerPayload()
		out := a.ring.take(len(inner))
		copy(out, inner)
		ctx.Data = out
		a.ctr.Inc(MeshDecapped, len(out))
		return ppe.VerdictPass
	}
	a.ctr.Inc(MeshPassed, len(data))
	return ppe.VerdictPass
}
