// Package faults is the deterministic fault-injection subsystem: a seeded
// Injector that perturbs the layers the paper's §4.2/§5.3 robustness
// claims depend on — the mgmt transport (connection drops, stalls, byte
// corruption), in-band control frames (loss), netsim links (flaps), the
// SPI flash (power-cut corruption mid-program, retention bit-rot), and
// signed bitstreams (CRC/HMAC/freshness tampering).
//
// All randomness comes from one rand.Rand owned by the Injector, seeded
// explicitly (typically with runner.TrialSeed derivatives), so any fault
// schedule is reproducible bit-for-bit. An Injector is not safe for
// concurrent use: give each module/simulator its own.
package faults

import (
	"errors"
	"math/rand"
	"sync"

	"flexsfp/internal/bitstream"
	"flexsfp/internal/flash"
	"flexsfp/internal/netsim"
	"flexsfp/internal/runner"
)

// Transport-level fault errors.
var (
	ErrConnDropped = errors.New("faults: connection dropped")
	ErrStalled     = errors.New("faults: request stalled past deadline")
	ErrFrameLost   = errors.New("faults: control frame lost")
)

// Rates are per-event fault probabilities in [0, 1].
type Rates struct {
	ConnDrop  float64 // mgmt request: connection drops (request may or may not have landed)
	Stall     float64 // mgmt request: peer stalls past the deadline
	Corrupt   float64 // mgmt response: one byte flipped in flight
	FrameLoss float64 // in-band control frame silently lost
}

// Scaled returns the rates multiplied by f (clamped to [0, 1]).
func (r Rates) Scaled(f float64) Rates {
	s := func(p float64) float64 {
		p *= f
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	}
	return Rates{
		ConnDrop:  s(r.ConnDrop),
		Stall:     s(r.Stall),
		Corrupt:   s(r.Corrupt),
		FrameLoss: s(r.FrameLoss),
	}
}

// Stats counts the faults actually injected.
type Stats struct {
	ConnDrops   uint64
	Stalls      uint64
	Corruptions uint64
	FrameLosses uint64
	PowerCuts   uint64
	BitRots     uint64
	LinkFlaps   uint64
	Tampers     uint64
}

// Total sums all injected faults.
func (s Stats) Total() uint64 {
	return s.ConnDrops + s.Stalls + s.Corruptions + s.FrameLosses +
		s.PowerCuts + s.BitRots + s.LinkFlaps + s.Tampers
}

// Injector draws fault decisions from a private seeded RNG.
type Injector struct {
	rng   *rand.Rand
	rates Rates
	stats Stats

	// seed is the root the injector was built from (New); seeded marks it
	// valid. Derive prefers this pure path so lane derivation never
	// touches the shared rng.
	seed     int64
	seeded   bool
	lazySeed sync.Once
}

// New builds an injector with its own RNG.
func New(seed int64, rates Rates) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), rates: rates, seed: seed, seeded: true}
}

// NewFrom builds an injector drawing from an existing RNG — typically a
// simulator's (netsim.Simulator.Rand), tying the fault schedule to the
// run's root seed.
func NewFrom(rng *rand.Rand, rates Rates) *Injector {
	return &Injector{rng: rng, rates: rates}
}

// Derive returns an independent injector for one worker lane, seeded
// from the parent's root seed and the lane index through the repo-wide
// SplitMix64 mixer (runner.TrialSeed). This is how concurrent fleet
// workers get goroutine-safe fault streams: the parent's embedded
// *rand.Rand is NOT safe for concurrent use, but Derive on a New-built
// parent is a pure function of (seed, lane) — callable from any number
// of goroutines at once — and two Derives of the same lane replay the
// same fault schedule.
//
// Parents built with NewFrom have no root seed of their own; the first
// Derive draws one from the shared RNG (once, so later Derives stay
// pure). That first call must be serialized with the RNG's other users.
func (in *Injector) Derive(lane uint64) *Injector {
	in.lazySeed.Do(func() {
		if !in.seeded {
			in.seed = int64(in.rng.Uint64())
			in.seeded = true
		}
	})
	return New(runner.TrialSeed(in.seed, int(lane)), in.rates)
}

// Rates returns the configured probabilities.
func (in *Injector) Rates() Rates { return in.rates }

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats { return in.stats }

// Roll draws once and reports whether an event with probability p fires.
// Exported so scenario code can gate bespoke faults (e.g. a wedged-PPE
// health probe) on the same deterministic stream.
func (in *Injector) Roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return in.rng.Float64() < p
}

// LoseFrame decides whether to drop one in-band control frame, counting
// it when lost. Wire it into a frame-delivery path:
//
//	if inj.LoseFrame() { return } // frame vanishes
func (in *Injector) LoseFrame() bool {
	if in.Roll(in.rates.FrameLoss) {
		in.stats.FrameLosses++
		return true
	}
	return false
}

// PowerCut simulates power loss mid-program: the first frac of the slot's
// bytes are left partially programmed (random bits cleared, as on real
// NOR). The slot will fail validation at the next boot.
func (in *Injector) PowerCut(dev *flash.Device, slot int, frac float64) error {
	addr, err := flash.SlotAddr(slot)
	if err != nil {
		return err
	}
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	n := int(float64(flash.SlotSize) * frac)
	if err := dev.CorruptRange(addr, n, func() byte { return byte(in.rng.Intn(256)) }); err != nil {
		return err
	}
	in.stats.PowerCuts++
	return nil
}

// BitRot flips bits random bits across a slot, modeling charge loss in a
// worn part (§5.3). Unlike PowerCut it can set bits as well as clear them.
func (in *Injector) BitRot(dev *flash.Device, slot, bits int) error {
	addr, err := flash.SlotAddr(slot)
	if err != nil {
		return err
	}
	if err := dev.FlipBits(addr, flash.SlotSize, bits, in.rng.Intn); err != nil {
		return err
	}
	in.stats.BitRots++
	return nil
}

// FlapLink schedules a link flap: down at downAt, back up downFor later.
// Frames offered while down are dropped (LinkStats.DownDrops).
func (in *Injector) FlapLink(sim *netsim.Simulator, l *netsim.Link, downAt, downFor netsim.Duration) {
	in.stats.LinkFlaps++
	sim.ScheduleDetached(downAt, func() { l.SetUp(false) })
	sim.ScheduleDetached(downAt+downFor, func() { l.SetUp(true) })
}

// TamperMode selects how TamperSigned damages a signed bitstream.
type TamperMode int

// Tamper modes, each tripping a distinct verification layer.
const (
	// TamperCRC flips a payload byte and re-signs: the HMAC verifies but
	// the CRC-32 integrity trailer does not (bitstream.ErrBadCRC).
	TamperCRC TamperMode = iota
	// TamperTruncate drops the blob's tail: too short to carry its
	// declared payload (bitstream.ErrTooShort after MAC failure).
	TamperTruncate
	// TamperWrongKey re-signs with a different key: authentication fails
	// (bitstream.ErrBadMAC).
	TamperWrongKey
	// TamperStale rewinds AppVersion to 0 and re-signs: a valid image
	// that loses the freshness check (bitstream.ErrStaleVersion).
	TamperStale
)

// TamperSigned returns a damaged copy of a signed bitstream. key is the
// legitimate signing key (needed to re-sign for the modes whose fault
// must survive authentication). Returns the input unchanged if it cannot
// be decoded.
func (in *Injector) TamperSigned(signed, key []byte, mode TamperMode) []byte {
	in.stats.Tampers++
	switch mode {
	case TamperCRC:
		body, err := bitstream.Verify(signed, key)
		if err != nil {
			return signed
		}
		bad := append([]byte(nil), body...)
		// Flip a bit in the last payload byte: header fields stay sane,
		// so decoding reaches (and fails) the CRC check.
		bad[len(bad)-bitstream.CRCSize-1] ^= 1 << uint(in.rng.Intn(8))
		return bitstream.Sign(bad, key)
	case TamperTruncate:
		n := len(signed) / 2
		return append([]byte(nil), signed[:n]...)
	case TamperWrongKey:
		body, err := bitstream.Verify(signed, key)
		if err != nil {
			return signed
		}
		wrong := append(append([]byte(nil), key...), 0xEE)
		return bitstream.Sign(body, wrong)
	case TamperStale:
		body, err := bitstream.Verify(signed, key)
		if err != nil {
			return signed
		}
		bs, err := bitstream.Decode(body)
		if err != nil {
			return signed
		}
		bs.AppVersion = 0
		enc, err := bs.Encode()
		if err != nil {
			return signed
		}
		return bitstream.Sign(enc, key)
	default:
		return signed
	}
}
