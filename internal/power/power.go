// Package power reproduces the §5 power measurement: "a custom in-house
// testbed capable of measuring current drawn from a Thunderbolt-connected
// NIC with a single 10 Gbps Ethernet port". The testbed model adds a NIC
// baseline to the module-under-test's draw and samples it through a
// current sensor with realistic quantization noise.
package power

import (
	"math"

	"flexsfp/internal/netsim"
)

// NICBaselineW is the Thunderbolt NIC with no module inserted: the
// paper's 3.800 W baseline.
const NICBaselineW = 3.800

// SensorNoiseW is the 1-sigma measurement noise of the current sensor.
const SensorNoiseW = 0.002

// Testbed samples power measurements deterministically from the
// simulation's random source.
type Testbed struct {
	sim *netsim.Simulator
}

// NewTestbed builds a measurement rig.
func NewTestbed(sim *netsim.Simulator) *Testbed {
	return &Testbed{sim: sim}
}

// Measurement is the averaged result of a sampling run.
type Measurement struct {
	MeanW   float64
	StddevW float64
	Samples int
}

// Measure samples the total draw (NIC baseline + module) n times and
// returns the average, rounded to the milliwatt the way the paper
// reports it.
func (tb *Testbed) Measure(moduleW float64, n int) Measurement {
	if n <= 0 {
		n = 100
	}
	truth := NICBaselineW + moduleW
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		s := truth + tb.sim.Rand().NormFloat64()*SensorNoiseW
		sum += s
		sumSq += s * s
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Measurement{
		MeanW:   math.Round(mean*1000) / 1000,
		StddevW: math.Sqrt(variance),
		Samples: n,
	}
}

// Report is the full §5 experiment output.
type Report struct {
	NICOnly   Measurement // paper: 3.800 W
	WithSFP   Measurement // paper: 4.693 W
	WithFlex  Measurement // paper: 5.320 W
	DeltaSFP  float64     // paper: ~0.9 W
	DeltaFlex float64     // paper: ~1.5 W
	// FlexOverSFP is the increase of FlexSFP over a plain SFP (~0.7 W).
	FlexOverSFP float64
}

// Run performs the three-step procedure with the given module draws
// measured under line-rate stress.
func (tb *Testbed) Run(sfpW, flexW float64, samplesPerStep int) Report {
	var r Report
	r.NICOnly = tb.Measure(0, samplesPerStep)
	r.WithSFP = tb.Measure(sfpW, samplesPerStep)
	r.WithFlex = tb.Measure(flexW, samplesPerStep)
	r.DeltaSFP = round3(r.WithSFP.MeanW - r.NICOnly.MeanW)
	r.DeltaFlex = round3(r.WithFlex.MeanW - r.NICOnly.MeanW)
	r.FlexOverSFP = round3(r.WithFlex.MeanW - r.WithSFP.MeanW)
	return r
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
