package overlay

import (
	"bytes"
	"fmt"
	"net/netip"
	"reflect"
	"testing"

	"flexsfp/internal/apps"
	"flexsfp/internal/mgmt"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
)

// innerFrame builds an edge frame from srcHost's /24 toward dstCable's
// announced prefix.
func innerFrame(srcCable, dstCable int, payload string) []byte {
	return packet.MustBuild(packet.Spec{
		SrcMAC:  packet.MustMAC("02:0e:00:00:00:01"),
		DstMAC:  packet.MustMAC("02:0e:00:00:00:02"),
		SrcIP:   netip.MustParseAddr(fmt.Sprintf("10.200.%d.1", srcCable+1)),
		DstIP:   netip.MustParseAddr(fmt.Sprintf("10.200.%d.9", dstCable+1)),
		SrcPort: 1111, DstPort: 2222,
		Payload: []byte(payload),
	})
}

// Three cables register at the rendezvous, converge to identical mesh
// state, and deliver edge traffic across the fabric; withdrawing one
// fails its prefix over to the announced backup.
func TestFabricEndToEnd(t *testing.T) {
	sh := netsim.NewSharded(7, 2)
	type delivery struct {
		count int
		last  []byte
	}
	var got [3]delivery
	f, err := NewFabric(FabricSpec{
		Sh: sh, Cables: 3,
		Prefixes: func(i int) []mgmt.OverlayPrefix {
			ps := []mgmt.OverlayPrefix{DefaultPrefix(i)}
			if i == 0 {
				// Cable 0 backs up cable 2's prefix.
				ps = append(ps, mgmt.OverlayPrefix{IP: [4]byte{10, 200, 3, 0}, Len: 24, Priority: 1})
			}
			return ps
		},
		EdgeSink: func(i int, data []byte) {
			got[i].count++
			got[i].last = append(got[i].last[:0], data...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RegisterAll(); err != nil {
		t.Fatal(err)
	}

	// Every cable sees the same fabric table at the same generation.
	var tables []mgmt.OverlayTable
	for _, c := range f.Cables {
		tab, err := c.Ctl.Sync()
		if err != nil {
			t.Fatalf("sync %s: %v", c.Name, err)
		}
		tables = append(tables, tab)
	}
	for i := 1; i < len(tables); i++ {
		if !reflect.DeepEqual(tables[i], tables[0]) {
			t.Fatalf("cable %d synced a different table:\n%+v\nvs\n%+v", i, tables[i], tables[0])
		}
	}
	if tables[0].Generation != 3 || len(tables[0].Peers) != 3 {
		t.Fatalf("table = gen %d, %d peers, want gen 3 with 3 peers", tables[0].Generation, len(tables[0].Peers))
	}
	// Each cable's datapath holds exactly the other two peers.
	for _, c := range f.Cables {
		dump, err := dumpPeers(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(dump) != 2 {
			t.Fatalf("%s has %d mesh peers, want 2", c.Name, len(dump))
		}
	}

	// Traffic: cable 0 → cable 1's prefix (VXLAN peer), cable 1 →
	// cable 2's prefix (GRE peer).
	epoch := sh.AlignClocks()
	f01 := innerFrame(0, 1, "zero-to-one")
	f12 := innerFrame(1, 2, "one-to-two")
	f.Cables[0].Sim.ScheduleAtDetached(epoch.Add(netsim.Microsecond), func() { f.Cables[0].Mod.RxEdge(f01) })
	f.Cables[1].Sim.ScheduleAtDetached(epoch.Add(netsim.Microsecond), func() { f.Cables[1].Mod.RxEdge(f12) })
	sh.RunUntil(epoch.Add(200 * netsim.Microsecond))

	if got[1].count != 1 || !bytes.Equal(got[1].last, f01) {
		t.Fatalf("cable 1 edge: %d deliveries, match=%v", got[1].count, bytes.Equal(got[1].last, f01))
	}
	if got[2].count != 1 || !bytes.Equal(got[2].last, f12) {
		t.Fatalf("cable 2 edge: %d deliveries, match=%v", got[2].count, bytes.Equal(got[2].last, f12))
	}

	// Withdraw cable 2 (observer: cable 0). After resync, its prefix is
	// owned by the backup: cable 1's traffic to 10.200.3/24 lands on
	// cable 0's edge.
	if err := f.Withdraw(0, "cable-2"); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncAll(); err != nil {
		t.Fatal(err)
	}
	f.SetCableLinks(2, false)
	f23 := innerFrame(1, 2, "failover")
	f.Cables[1].Sim.ScheduleAtDetached(epoch.Add(300*netsim.Microsecond), func() { f.Cables[1].Mod.RxEdge(f23) })
	sh.RunUntil(epoch.Add(500 * netsim.Microsecond))

	if got[0].count != 1 || !bytes.Equal(got[0].last, f23) {
		t.Fatalf("failover: cable 0 edge got %d deliveries", got[0].count)
	}
	if got[2].count != 1 {
		t.Fatalf("withdrawn cable 2 received traffic after failover: %d", got[2].count)
	}
}

// A route pointing at a peer missing from mesh_peers (the mid-sync
// transient) drops and counts MeshNoPeer — frames are never delivered to
// a withdrawn peer, and never misrouted.
func TestFabricWithdrawnPeerFailsClosed(t *testing.T) {
	sh := netsim.NewSharded(11, 1)
	var delivered [2]int
	f, err := NewFabric(FabricSpec{
		Sh: sh, Cables: 2,
		EdgeSink: func(i int, data []byte) { delivered[i]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RegisterAll(); err != nil {
		t.Fatal(err)
	}

	// Rip cable 1's peer entry out of cable 0's datapath while leaving
	// the route in place — exactly the state a crashed peer leaves
	// behind before the controller's next sync.
	c0 := f.Cables[0]
	client := mgmt.NewClient(mgmt.TransportFunc(func(req []byte) ([]byte, error) {
		return c0.Agent.Handle(req), nil
	}))
	var peerKey [2]byte
	dump, err := dumpPeers(c0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump) != 1 {
		t.Fatalf("cable 0 has %d peers, want 1", len(dump))
	}
	for k := range dump {
		peerKey = [2]byte{k[0], k[1]}
	}
	if err := client.TableDel(apps.MeshPeerTable, peerKey[:]); err != nil {
		t.Fatal(err)
	}

	epoch := sh.AlignClocks()
	txBefore := c0.Links[1].Stats().TxFrames
	frame := innerFrame(0, 1, "into-the-void")
	c0.Sim.ScheduleAtDetached(epoch.Add(netsim.Microsecond), func() { c0.Mod.RxEdge(frame) })
	sh.RunUntil(epoch.Add(100 * netsim.Microsecond))

	if delivered[1] != 0 {
		t.Fatal("frame delivered to withdrawn peer")
	}
	if tx := c0.Links[1].Stats().TxFrames; tx != txBefore {
		t.Fatalf("frame left on the underlay link: %d -> %d", txBefore, tx)
	}
	if pkts, _, err := client.CounterRead("mesh", apps.MeshNoPeer); err != nil || pkts != 1 {
		t.Fatalf("MeshNoPeer = %d (%v), want 1", pkts, err)
	}
}

// dumpPeers reads a cable's mesh_peers table through its agent.
func dumpPeers(c *Cable) (map[string][]byte, error) {
	client := mgmt.NewClient(mgmt.TransportFunc(func(req []byte) ([]byte, error) {
		return c.Agent.Handle(req), nil
	}))
	entries, err := client.TableDump(apps.MeshPeerTable)
	if err != nil {
		return nil, err
	}
	out := map[string][]byte{}
	for _, e := range entries {
		out[string(e.Key)] = e.Value
	}
	return out, nil
}
