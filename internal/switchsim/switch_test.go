package switchsim

import (
	"encoding/json"
	"net/netip"
	"testing"

	"flexsfp/internal/apps"
	"flexsfp/internal/core"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
)

const tenGig = 10_000_000_000

var (
	macH1 = packet.MustMAC("02:00:00:00:01:01")
	macH2 = packet.MustMAC("02:00:00:00:01:02")
	macH3 = packet.MustMAC("02:00:00:00:01:03")
	ipH1  = netip.MustParseAddr("10.0.0.1")
	ipH2  = netip.MustParseAddr("10.0.0.2")
)

// buildAccess wires a 3-port switch with standard SFPs and three hosts.
func buildAccess(t *testing.T, sim *netsim.Simulator) (*Switch, []*Host) {
	t.Helper()
	sw := New(sim, "agg-1", 3)
	hosts := []*Host{
		NewHost("h1", macH1), NewHost("h2", macH2), NewHost("h3", macH3),
	}
	for i, h := range hosts {
		sw.Cage(i).Insert(core.NewStandardSFP(sim))
		Fiber(sim, sw.Cage(i), h, tenGig, 100)
	}
	return sw, hosts
}

func frame(t *testing.T, src, dst packet.MAC) []byte {
	t.Helper()
	return packet.MustBuild(packet.Spec{
		SrcMAC: src, DstMAC: dst,
		SrcIP: ipH1, DstIP: ipH2,
		SrcPort: 1000, DstPort: 2000, PadTo: 64,
	})
}

func TestFloodThenLearnThenForward(t *testing.T) {
	sim := netsim.New(1)
	sw, hosts := buildAccess(t, sim)

	// First frame h1→h2: unknown destination, flooded to h2 and h3.
	hosts[0].Send(frame(t, macH1, macH2))
	sim.Run()
	if hosts[1].RxFrames != 1 || hosts[2].RxFrames != 1 {
		t.Errorf("flood: h2=%d h3=%d", hosts[1].RxFrames, hosts[2].RxFrames)
	}
	if sw.Stats().Flooded != 1 {
		t.Errorf("flooded = %d", sw.Stats().Flooded)
	}

	// Reply h2→h1: h1's MAC is learned, so unicast.
	hosts[1].Send(frame(t, macH2, macH1))
	sim.Run()
	if hosts[0].RxFrames != 1 {
		t.Errorf("h1 rx = %d", hosts[0].RxFrames)
	}
	if hosts[2].RxFrames != 1 {
		t.Errorf("h3 rx = %d (reply should not flood)", hosts[2].RxFrames)
	}
	if sw.Stats().Forwarded != 1 {
		t.Errorf("forwarded = %d", sw.Stats().Forwarded)
	}

	// Now h1→h2 is unicast too.
	hosts[0].Send(frame(t, macH1, macH2))
	sim.Run()
	if hosts[2].RxFrames != 1 {
		t.Error("learned forwarding still flooding")
	}
	if sw.MACTableSize() != 2 {
		t.Errorf("mac table = %d entries", sw.MACTableSize())
	}
}

func TestBroadcastFloods(t *testing.T) {
	sim := netsim.New(1)
	_, hosts := buildAccess(t, sim)
	bc := packet.MustBuild(packet.Spec{
		SrcMAC: macH1, DstMAC: packet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		SrcIP: ipH1, DstIP: ipH2, SrcPort: 1, DstPort: 2, PadTo: 64,
	})
	hosts[0].Send(bc)
	sim.Run()
	if hosts[1].RxFrames != 1 || hosts[2].RxFrames != 1 {
		t.Error("broadcast not flooded to all other ports")
	}
}

func TestHairpinFiltered(t *testing.T) {
	sim := netsim.New(1)
	sw, hosts := buildAccess(t, sim)
	// Teach the switch both MACs on port 0's segment is impossible here;
	// instead send a frame whose destination is its own source port.
	hosts[0].Send(frame(t, macH1, macH2)) // learn h1@0 (flood)
	sim.Run()
	hosts[1].Send(frame(t, macH2, macH1)) // learn h2@1 (forward)
	sim.Run()
	drops := sw.Stats().Dropped
	hosts[0].Send(frame(t, macH2, macH1)) // claims to be h2 but arrives on 0 → dst h1 is on 0: hairpin
	sim.Run()
	if sw.Stats().Dropped != drops+1 {
		t.Errorf("hairpin not filtered: drops %d → %d", drops, sw.Stats().Dropped)
	}
}

func TestFabricLatency(t *testing.T) {
	sim := netsim.New(1)
	_, hosts := buildAccess(t, sim)
	hosts[0].Send(frame(t, macH1, macH2))
	var deliveredAt netsim.Time
	hosts[1].OnFrame = func(data []byte) { deliveredAt = sim.Now() }
	sim.Run()
	// Path: fiber up (68 ns ser + 100 prop) + retimer 5 + fabric 800 +
	// retimer 5 + fiber down (68 + 100). Roughly 1.1 µs.
	if deliveredAt < 1000 || deliveredAt > 1500 {
		t.Errorf("delivered at %v, want ≈1.1 µs", deliveredAt)
	}
}

// TestRetrofitACL is the §2.1 scenario in miniature: swapping a standard
// SFP for a FlexSFP running the firewall turns a dumb port into an
// enforcement point, with zero switch changes.
func TestRetrofitACL(t *testing.T) {
	sim := netsim.New(1)
	sw, hosts := buildAccess(t, sim)

	// Establish MAC learning with the plain SFPs first.
	hosts[0].Send(frame(t, macH1, macH2))
	sim.Run()
	hosts[1].Send(frame(t, macH2, macH1))
	sim.Run()
	h2Before := hosts[1].RxFrames

	// Retrofit port 1 with a FlexSFP running an ACL that denies UDP 2000
	// toward the subscriber.
	reg := apps.NewRegistry()
	mod := core.NewModule(core.Config{
		Sim: sim, Name: "flex-p1", DeviceID: 1,
		Shell: hls.TwoWayCore, Registry: reg, AuthKey: []byte("k"),
	})
	aclCfg, _ := json.Marshal(apps.ACLConfig{
		Rules: []apps.ACLRule{{DstPort: 2000, Proto: 17, Deny: true, Priority: 10}},
	})
	app, err := reg.New("acl")
	if err != nil {
		t.Fatal(err)
	}
	design, err := hls.Compile(app.Program(), hls.Options{
		ClockHz: 156_250_000, DatapathBits: 64, Config: aclCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, _ := design.Bitstream.Encode()
	if _, err := mod.Install(1, enc); err != nil {
		t.Fatal(err)
	}
	if err := mod.BootSync(1); err != nil {
		t.Fatal(err)
	}
	sw.Cage(1).Insert(mod)
	Fiber(sim, sw.Cage(1), hosts[1], tenGig, 100)

	// Blocked traffic (UDP 2000) no longer reaches h2...
	hosts[0].Send(frame(t, macH1, macH2))
	sim.Run()
	if hosts[1].RxFrames != h2Before {
		t.Error("ACL did not block filtered traffic")
	}
	// ...but other traffic does.
	ok := packet.MustBuild(packet.Spec{
		SrcMAC: macH1, DstMAC: macH2, SrcIP: ipH1, DstIP: ipH2,
		SrcPort: 1000, DstPort: 443, Proto: packet.IPProtocolTCP, PadTo: 64,
	})
	hosts[0].Send(ok)
	sim.Run()
	if hosts[1].RxFrames != h2Before+1 {
		t.Error("permitted traffic blocked after retrofit")
	}
	if mod.Engine().Stats().Drop != 1 {
		t.Errorf("module drops = %d", mod.Engine().Stats().Drop)
	}
}

func TestTransceiverPowerSum(t *testing.T) {
	sim := netsim.New(1)
	sw, _ := buildAccess(t, sim)
	// 3 standard SFPs.
	want := 3 * core.StandardSFPPowerW
	if got := sw.TotalTransceiverPowerW(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("power = %.6f, want %.6f", got, want)
	}
}

func TestCrossConnect(t *testing.T) {
	sim := netsim.New(1)
	swA := New(sim, "a", 2)
	swB := New(sim, "b", 2)
	hA := NewHost("ha", macH1)
	hB := NewHost("hb", macH2)
	swA.Cage(0).Insert(core.NewStandardSFP(sim))
	swA.Cage(1).Insert(core.NewStandardSFP(sim))
	swB.Cage(0).Insert(core.NewStandardSFP(sim))
	swB.Cage(1).Insert(core.NewStandardSFP(sim))
	Fiber(sim, swA.Cage(0), hA, tenGig, 100)
	Fiber(sim, swB.Cage(0), hB, tenGig, 100)
	CrossConnect(sim, swA.Cage(1), swB.Cage(1), tenGig, 1000)

	hA.Send(frame(t, macH1, macH2))
	sim.Run()
	if hB.RxFrames != 1 {
		t.Errorf("cross-switch delivery failed: hB rx = %d", hB.RxFrames)
	}
}

func TestEmptyCageDrops(t *testing.T) {
	sim := netsim.New(1)
	sw := New(sim, "s", 2)
	sw.Cage(0).Insert(core.NewStandardSFP(sim))
	h := NewHost("h", macH1)
	Fiber(sim, sw.Cage(0), h, tenGig, 100)
	h.Send(frame(t, macH1, macH2)) // floods toward empty cage 1
	sim.Run()
	if sw.Stats().Dropped == 0 {
		t.Error("frame to empty cage not counted as dropped")
	}
}
