package apps

import (
	"bytes"
	"net/netip"
	"testing"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

func meshTestConfig(mode string, host byte) MeshConfig {
	return MeshConfig{
		Mode:     mode,
		LocalIP:  netip.AddrFrom4([4]byte{10, 254, 0, host}).String(),
		LocalMAC: packet.MAC{0x02, 0xcc, 0, 0, 0, host}.String(),
		VNI:      4000 + uint32(host),
		GREKey:   700 + uint32(host),
	}
}

func meshTestPeer(mode uint8, host byte) MeshPeer {
	return MeshPeer{
		Mode: mode,
		IP:   [4]byte{10, 254, 0, host},
		MAC:  [6]byte{0x02, 0xcc, 0, 0, 0, host},
		VNI:  4000 + uint32(host),
		// GREKey mirrors the peer's receive-side key so its decap accepts us.
		GREKey: 700 + uint32(host),
	}
}

func addMeshPeer(t *testing.T, a *meshApp, id uint16, p MeshPeer) {
	t.Helper()
	k, v := MeshPeerKey(id), p.Encode()
	if err := a.peers.Add(k[:], v[:]); err != nil {
		t.Fatal(err)
	}
}

func addMeshRoute(t *testing.T, a *meshApp, prefix [4]byte, id uint16) {
	t.Helper()
	k, v := MeshRouteKey(prefix), MeshRouteValue(id)
	if err := a.routes.Add(k[:], v[:]); err != nil {
		t.Fatal(err)
	}
}

func newMeshApp(t *testing.T, mode string, host byte) *meshApp {
	t.Helper()
	a := NewMesh()
	if err := a.Configure(mustJSON(t, meshTestConfig(mode, host))); err != nil {
		t.Fatal(err)
	}
	return a
}

// Routing picks per-peer encap state: two peers in different modes, two
// prefixes, and each edge frame comes out wrapped for the right remote.
func TestMeshEncapsPerPeerMode(t *testing.T) {
	a := newMeshApp(t, TunnelVXLAN, 1)
	addMeshPeer(t, a, 2, meshTestPeer(MeshModeGRE, 2))
	addMeshPeer(t, a, 3, meshTestPeer(MeshModeVXLAN, 3))
	addMeshRoute(t, a, [4]byte{10, 200, 2, 0}, 2)
	addMeshRoute(t, a, [4]byte{10, 200, 3, 0}, 3)

	for _, tc := range []struct {
		dst  netip.Addr
		peer byte
		gre  bool
	}{
		{netip.AddrFrom4([4]byte{10, 200, 2, 9}), 2, true},
		{netip.AddrFrom4([4]byte{10, 200, 3, 77}), 3, false},
	} {
		frame := packet.MustBuild(packet.Spec{
			SrcMAC: macHost, DstMAC: macGW, SrcIP: ipInt, DstIP: tc.dst,
			SrcPort: 7, DstPort: 8, PadTo: 96,
		})
		v, out := run(a.prog.Handler, frame, ppe.DirEdgeToOptical)
		if v != ppe.VerdictPass {
			t.Fatalf("peer %d: verdict %v", tc.peer, v)
		}
		pkt := packet.NewPacket(out, packet.LayerTypeEthernet)
		if pkt.ErrorLayer() != nil {
			t.Fatal(pkt.ErrorLayer())
		}
		outer := pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
		wantDst := netip.AddrFrom4([4]byte{10, 254, 0, tc.peer})
		if outer.DstIP != wantDst {
			t.Errorf("peer %d: outer dst %v, want %v", tc.peer, outer.DstIP, wantDst)
		}
		if tc.gre {
			gre := pkt.Layer(packet.LayerTypeGRE)
			if gre == nil || gre.(*packet.GRE).Key != 700+uint32(tc.peer) {
				t.Fatalf("peer %d: gre = %+v", tc.peer, gre)
			}
		} else {
			vx := pkt.Layer(packet.LayerTypeVXLAN)
			if vx == nil || vx.(*packet.VXLAN).VNI != 4000+uint32(tc.peer) {
				t.Fatalf("peer %d: vxlan = %+v", tc.peer, vx)
			}
		}
	}
	if n, _ := a.ctr.Read(MeshEncapped); n != 2 {
		t.Errorf("encapped = %d", n)
	}
}

// Full mesh round trip in both modes: A encaps toward B using B's
// registered endpoint, B decaps back to the original edge frame.
func TestMeshRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode uint8
		bCfg string
	}{
		{"gre", MeshModeGRE, TunnelGRE},
		{"vxlan", MeshModeVXLAN, TunnelVXLAN},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := newMeshApp(t, TunnelVXLAN, 1)
			b := newMeshApp(t, tc.bCfg, 2)
			addMeshPeer(t, a, 2, meshTestPeer(tc.mode, 2))
			addMeshRoute(t, a, [4]byte{10, 200, 2, 0}, 2)

			inner := packet.MustBuild(packet.Spec{
				SrcMAC: macHost, DstMAC: macGW, SrcIP: ipInt,
				DstIP:   netip.AddrFrom4([4]byte{10, 200, 2, 5}),
				SrcPort: 7, DstPort: 8, PadTo: 128,
			})
			_, encapped := run(a.prog.Handler, inner, ppe.DirEdgeToOptical)
			wire := append([]byte(nil), encapped...)
			v, decapped := run(b.prog.Handler, wire, ppe.DirOpticalToEdge)
			if v != ppe.VerdictPass {
				t.Fatalf("decap verdict %v", v)
			}
			if !bytes.Equal(decapped, inner) {
				t.Fatal("inner frame corrupted through the mesh")
			}
			if n, _ := b.ctr.Read(MeshDecapped); n != 1 {
				t.Errorf("decapped = %d", n)
			}
		})
	}
}

// Frames matching no overlay prefix pass untouched (underlay traffic).
func TestMeshNoRoutePasses(t *testing.T) {
	a := newMeshApp(t, TunnelVXLAN, 1)
	frame := udpFrame(t, ipInt, ipSrv, 7, 8)
	v, out := run(a.prog.Handler, frame, ppe.DirEdgeToOptical)
	if v != ppe.VerdictPass || !bytes.Equal(out, frame) {
		t.Fatalf("verdict %v, frame modified=%v", v, !bytes.Equal(out, frame))
	}
	if n, _ := a.ctr.Read(MeshNoRoute); n != 1 {
		t.Errorf("no-route = %d", n)
	}
}

// A withdrawn peer fails closed: once the peer table entry is deleted,
// frames for a route still naming it are dropped (MeshNoPeer), never
// encapped toward the dead remote — the datapath half of the chaos
// invariant. The cache must notice the table generation change.
func TestMeshWithdrawnPeerFailsClosed(t *testing.T) {
	a := newMeshApp(t, TunnelVXLAN, 1)
	addMeshPeer(t, a, 2, meshTestPeer(MeshModeVXLAN, 2))
	addMeshRoute(t, a, [4]byte{10, 200, 2, 0}, 2)

	frame := packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW, SrcIP: ipInt,
		DstIP:   netip.AddrFrom4([4]byte{10, 200, 2, 5}),
		SrcPort: 7, DstPort: 8, PadTo: 96,
	})
	if v, _ := run(a.prog.Handler, frame, ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Fatal("pre-withdrawal frame dropped")
	}

	k := MeshPeerKey(2)
	if err := a.peers.Delete(k[:]); err != nil {
		t.Fatal(err)
	}
	v, _ := run(a.prog.Handler, frame, ppe.DirEdgeToOptical)
	if v != ppe.VerdictDrop {
		t.Fatal("frame delivered toward a withdrawn peer")
	}
	if n, _ := a.ctr.Read(MeshNoPeer); n != 1 {
		t.Errorf("no-peer = %d", n)
	}

	// Re-registering the peer restores forwarding (cache follows the
	// generation forward, not just on first change).
	addMeshPeer(t, a, 2, meshTestPeer(MeshModeVXLAN, 2))
	if v, _ := run(a.prog.Handler, frame, ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Fatal("re-registered peer still dropped")
	}
}

// The mesh hot path is alloc-free in steady state (stable peer table).
func TestMeshHandlerZeroAlloc(t *testing.T) {
	a := newMeshApp(t, TunnelVXLAN, 1)
	addMeshPeer(t, a, 2, meshTestPeer(MeshModeGRE, 2))
	addMeshPeer(t, a, 3, meshTestPeer(MeshModeVXLAN, 3))
	addMeshRoute(t, a, [4]byte{10, 200, 2, 0}, 2)
	addMeshRoute(t, a, [4]byte{10, 200, 3, 0}, 3)
	b := newMeshApp(t, TunnelVXLAN, 3)

	frames := make([][]byte, 2)
	for i, dst := range [][4]byte{{10, 200, 2, 5}, {10, 200, 3, 5}} {
		frames[i] = packet.MustBuild(packet.Spec{
			SrcMAC: macHost, DstMAC: macGW, SrcIP: ipInt,
			DstIP:   netip.AddrFrom4(dst),
			SrcPort: 7, DstPort: 8, PadTo: 256,
		})
	}
	ctx := &ppe.Ctx{Dir: ppe.DirEdgeToOptical, TimestampNs: 1}
	if n := testing.AllocsPerRun(200, func() {
		for _, f := range frames {
			ctx.Data = f
			a.prog.Handler.HandlePacket(ctx)
		}
	}); n != 0 {
		t.Errorf("mesh egress: %.1f allocs/op, want 0", n)
	}

	ctx.Data = frames[1]
	a.prog.Handler.HandlePacket(ctx)
	wire := append([]byte(nil), ctx.Data...)
	dctx := &ppe.Ctx{Dir: ppe.DirOpticalToEdge, TimestampNs: 1}
	if n := testing.AllocsPerRun(200, func() {
		dctx.Data = wire
		b.prog.Handler.HandlePacket(dctx)
	}); n != 0 {
		t.Errorf("mesh ingress: %.1f allocs/op, want 0", n)
	}
}
