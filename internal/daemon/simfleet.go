package daemon

import (
	"errors"
	"fmt"

	"flexsfp/internal/bitstream"
	"flexsfp/internal/faults"
	"flexsfp/internal/mgmt"
	"flexsfp/internal/netsim"
	"flexsfp/internal/telemetry"
)

// SimMember is a lightweight in-memory FleetMember for fleet-scale
// simulation: no TCP, no flash device, no netsim event loop — just the
// A/B slot state machine, signature verification, and a per-member fault
// injector driving the chaos a real OTA wave would see. 100k–1M of these
// fit in memory, which is what lets the fleet_ota experiment exercise the
// controller at the paper's deployment scale.
//
// A SimMember is driven by exactly one shard worker at a time (the
// FleetMember contract), so it carries no locks; its randomness comes
// from its own derived injector, making the whole fleet's behavior a
// pure function of the root seed.
type SimMember struct {
	name string
	inj  *faults.Injector
	cfg  SimMemberConfig

	// slots[i] holds slot i's signed image; a power-cut slot keeps its
	// bytes but is marked unbootable.
	slots      []simSlot
	activeSlot int
	running    bool

	// wedged marks a member that booted the target image but hung;
	// lateWedged only manifests from the second Stats read after boot
	// (the failure mode the inter-wave bake exists to catch).
	wedged     bool
	lateWedged bool
	statsReads int

	pushes    uint64
	retries   uint64
	boots     uint64
	fallbacks uint64
	tampered  uint64
	powerCuts uint64

	costNs     uint64 // accumulated simulated time across all ops
	lastOpCost uint64 // simulated cost of the most recent Push/Reboot
}

type simSlot struct {
	img []byte
	ok  bool // false after a power cut mid-write
}

// SimMemberConfig shapes a simulated member's failure model. The
// transport-level rates (ConnDrop, Stall) come from the injector; these
// are the image/boot-level hazards layered on top, each rolled once per
// landed push or boot on the member's own fault stream.
type SimMemberConfig struct {
	// Key is the fleet's bitstream signing key; boots verify against it.
	Key []byte
	// Retry is the push retry schedule (mgmt.RetryPolicy semantics, with
	// Backoff's deterministic jitter); zero value = single attempt.
	Retry mgmt.RetryPolicy
	// TamperProb: a landed push stores a tampered copy of the image
	// (mode drawn from the member's stream) — boot verification rejects
	// it and falls back to the previous slot.
	TamperProb float64
	// PowerCutProb: power fails mid-write after the transport ack; the
	// slot is left unbootable and boot falls back.
	PowerCutProb float64
	// WedgeProb: the target image verifies and boots but the app hangs
	// immediately (caught by the first health check).
	WedgeProb float64
	// LateWedgeProb: the app hangs only after the first health check
	// passes (caught by the inter-wave bake, or never).
	LateWedgeProb float64
}

// NewSimMember builds a member with goodImage installed and running in
// slot startSlot. inj must be the member's private injector (typically
// parent.Derive(lane)).
func NewSimMember(name string, inj *faults.Injector, cfg SimMemberConfig, slots, startSlot int, goodImage []byte) *SimMember {
	if slots < 2 {
		slots = 2
	}
	m := &SimMember{
		name:       name,
		inj:        inj,
		cfg:        cfg,
		slots:      make([]simSlot, slots),
		activeSlot: startSlot,
		running:    true,
	}
	m.slots[startSlot] = simSlot{img: goodImage, ok: true}
	return m
}

// Name implements FleetMember.
func (m *SimMember) Name() string { return m.name }

// CostNs returns the member's total simulated operation time.
func (m *SimMember) CostNs() uint64 { return m.costNs }

// LastOpCostNs returns the simulated cost of the most recent Push or
// Reboot — the per-wave latency contribution WaveCost hooks want.
func (m *SimMember) LastOpCostNs() uint64 { return m.lastOpCost }

// Injector exposes the member's fault injector (for chaos accounting).
func (m *SimMember) Injector() *faults.Injector { return m.inj }

// Simulated operation costs, in netsim time.
const (
	simPushBaseNs  = uint64(500 * netsim.Microsecond) // session setup + verify
	simPushPerByte = uint64(20 * netsim.Nanosecond)   // chunked transfer rate
	simBootNs      = uint64(5 * netsim.Millisecond)   // reconfig + app start
	simStallNs     = uint64(2 * netsim.Millisecond)   // deadline burned by a stall
)

var errSlotRange = errors.New("daemon: slot out of range")

// Push implements FleetMember: a resumable chunked OTA with transport
// chaos. Each attempt may stall or drop; a dropped request still landed
// with probability 0.5 (mgmt's documented ConnDrop ambiguity). A landed
// write may store a tampered copy or lose power mid-write.
func (m *SimMember) Push(signed []byte, slot int, rebootAfter bool) error {
	if slot < 0 || slot >= len(m.slots) {
		return errSlotRange
	}
	attempts := m.cfg.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	cost := uint64(0)
	landed := false
	var lastErr error
	id := uint32(m.pushes) // deterministic per-member request id
	for a := 0; a < attempts; a++ {
		if a > 0 {
			m.retries++
			cost += uint64(m.cfg.Retry.Backoff(id, a-1))
		}
		m.pushes++
		switch {
		case m.inj.Roll(m.inj.Rates().Stall):
			cost += simStallNs
			lastErr = faults.ErrStalled
			continue
		case m.inj.Roll(m.inj.Rates().ConnDrop):
			cost += simPushBaseNs / 2
			if m.inj.Roll(0.5) {
				landed = true // ack lost, write happened
			}
			lastErr = faults.ErrConnDropped
			if landed {
				break
			}
			continue
		default:
			cost += simPushBaseNs + simPushPerByte*uint64(len(signed))
			landed = true
			lastErr = nil
		}
		break
	}
	if landed {
		m.storeImage(signed, slot)
	}
	if lastErr != nil && !landed {
		m.bumpCost(cost)
		return lastErr
	}
	if rebootAfter {
		cost += m.boot(slot)
	}
	m.bumpCost(cost)
	if lastErr != nil {
		return lastErr // landed, but the controller saw a dropped conn
	}
	return nil
}

// storeImage writes the slot, applying image-level chaos.
func (m *SimMember) storeImage(signed []byte, slot int) {
	img := signed
	if m.inj.Roll(m.cfg.TamperProb) {
		mode := faults.TamperCRC
		if m.inj.Roll(0.5) {
			mode = faults.TamperTruncate
		}
		if m.inj.Roll(0.5) {
			mode += 2 // TamperWrongKey / TamperStale
		}
		img = m.inj.TamperSigned(signed, m.cfg.Key, mode)
		m.tampered++
	}
	ok := true
	if m.inj.Roll(m.cfg.PowerCutProb) {
		ok = false
		m.powerCuts++
	}
	m.slots[slot] = simSlot{img: img, ok: ok}
}

// boot attempts to activate slot, falling back to the current active
// slot when the image fails verification (the golden-fallback path).
// Returns the simulated boot cost.
func (m *SimMember) boot(slot int) uint64 {
	m.boots++
	m.wedged, m.lateWedged, m.statsReads = false, false, 0
	if !m.slotBootable(slot) {
		// Boot ROM rejects the slot and re-activates the previous image.
		m.fallbacks++
		m.running = m.slotBootable(m.activeSlot)
		return 2 * simBootNs
	}
	m.activeSlot = slot
	m.running = true
	if m.inj.Roll(m.cfg.WedgeProb) {
		m.wedged = true
	} else if m.inj.Roll(m.cfg.LateWedgeProb) {
		m.lateWedged = true
	}
	return simBootNs
}

// slotBootable verifies a slot the way the boot ROM would: bytes present,
// no power-cut scar, signature + CRC + freshness all valid. The fast path
// (identical bytes to a previously verified image) is skipped on purpose:
// verification cost is charged to simBootNs either way.
func (m *SimMember) slotBootable(slot int) bool {
	s := m.slots[slot]
	if len(s.img) == 0 || !s.ok {
		return false
	}
	body, err := bitstream.Verify(s.img, m.cfg.Key)
	if err != nil {
		return false
	}
	if _, err := bitstream.Decode(body); err != nil {
		return false
	}
	return true
}

// Reboot implements FleetMember: boot into slot (the rollback path).
// Reliable — rollback rides the already-open mgmt session.
func (m *SimMember) Reboot(slot int) error {
	if slot < 0 || slot >= len(m.slots) {
		return errSlotRange
	}
	m.bumpCost(m.boot(slot))
	if !m.running {
		return fmt.Errorf("daemon: %s failed to boot slot %d", m.name, slot)
	}
	return nil
}

// Stats implements FleetMember. Reads are reliable (the mgmt session's
// stats path retries internally); a late-wedged member reports healthy
// on the first read after boot and hung from the second — which is
// exactly what an inter-wave bake exists to catch.
func (m *SimMember) Stats() (mgmt.Stats, error) {
	m.statsReads++
	running := m.running && !m.wedged
	if m.lateWedged && m.statsReads > 1 {
		running = false
	}
	return mgmt.Stats{
		Running:         running,
		ActiveSlot:      m.activeSlot,
		Boots:           m.boots,
		GoldenFallbacks: m.fallbacks,
	}, nil
}

// Wedged reports whether the member is currently hung (for tests).
func (m *SimMember) Wedged() bool {
	return m.wedged || (m.lateWedged && m.statsReads > 1)
}

// ActiveSlot returns the member's active slot (for tests/invariants).
func (m *SimMember) ActiveSlot() int { return m.activeSlot }

// Running reports app liveness ignoring read-count effects: false for
// wedged and late-wedged members alike.
func (m *SimMember) Running() bool { return m.running && !m.wedged && !m.lateWedged }

// OnBadImage reports whether the member's active slot fails verification
// — the invariant the fleet controller must drive to zero.
func (m *SimMember) OnBadImage() bool { return !m.slotBootable(m.activeSlot) }

func (m *SimMember) bumpCost(ns uint64) {
	m.costNs += ns
	m.lastOpCost = ns
}

// Telemetry implements FleetMember: a small snapshot in registry form so
// per-member data flows through the same hierarchical fold as real
// modules' telemetry.
func (m *SimMember) Telemetry() (telemetry.Snapshot, error) {
	buckets := []telemetry.BucketSnap{
		{UpperBound: uint64(netsim.Millisecond), Count: 0},
		{UpperBound: uint64(10 * netsim.Millisecond), Count: 0},
		{UpperBound: uint64(100 * netsim.Millisecond), Count: 0},
		{Overflow: true, Count: 0},
	}
	switch {
	case m.costNs <= uint64(netsim.Millisecond):
		buckets[0].Count = 1
	case m.costNs <= uint64(10*netsim.Millisecond):
		buckets[1].Count = 1
	case m.costNs <= uint64(100*netsim.Millisecond):
		buckets[2].Count = 1
	default:
		buckets[3].Count = 1
	}
	snap := telemetry.Snapshot{
		Counters: []telemetry.CounterSnap{
			{Name: "ota_boots", Value: m.boots},
			{Name: "ota_fallbacks", Value: m.fallbacks},
			{Name: "ota_pushes", Value: m.pushes},
			{Name: "ota_retries", Value: m.retries},
		},
		Histograms: []telemetry.HistogramSnap{{
			Name: "ota_member_cost_ns", Count: 1, Sum: m.costNs,
			Min: m.costNs, Max: m.costNs, Mean: float64(m.costNs),
			Buckets: buckets,
		}},
	}
	return snap, nil
}

// BuildSimFleet constructs n members named sim-000000… with goodImage
// running in startSlot, each with its own injector derived from parent
// (lane = member index). Deterministic for a fixed parent seed.
func BuildSimFleet(n int, parent *faults.Injector, cfg SimMemberConfig, slots, startSlot int, goodImage []byte) []FleetMember {
	ms := make([]FleetMember, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("sim-%06d", i)
		ms[i] = NewSimMember(name, parent.Derive(uint64(i)), cfg, slots, startSlot, goodImage)
	}
	return ms
}
