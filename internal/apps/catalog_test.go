package apps

import (
	"net/netip"
	"testing"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// --- ARP-spoof guard ---------------------------------------------------------

func arpFrame(t *testing.T, srcMAC, senderMAC packet.MAC, senderIP string) []byte {
	t.Helper()
	b, err := packet.BuildARP(packet.ARPSpec{
		SrcMAC:    srcMAC,
		SenderMAC: senderMAC,
		SenderIP:  netip.MustParseAddr(senderIP),
		TargetIP:  netip.MustParseAddr("10.0.0.254"),
		PadTo:     64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestARPGuardDropsSpoofedSender(t *testing.T) {
	a := NewARPGuard()
	cfg := ARPGuardConfig{Bindings: []ARPBinding{{IP: "10.0.0.1", MAC: macHost.String()}}}
	if err := a.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}

	if v, _ := run(a.prog.Handler, arpFrame(t, macHost, macHost, "10.0.0.1"), ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Error("legitimate ARP dropped")
	}
	// Attacker claims the bound IP from its own MAC.
	if v, _ := run(a.prog.Handler, arpFrame(t, macGW, macGW, "10.0.0.1"), ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("spoofed sender IP passed")
	}
	// L2 source and ARP sender hardware address must agree.
	if v, _ := run(a.prog.Handler, arpFrame(t, macGW, macHost, "10.0.0.1"), ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("ethernet/ARP sender MAC mismatch passed")
	}
	// Unknown sender passes in the default (non-strict) mode.
	if v, _ := run(a.prog.Handler, arpFrame(t, macGW, macGW, "10.0.0.99"), ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Error("unknown sender dropped without strict mode")
	}
	// Duplicate-address-detection probes (sender 0.0.0.0) are exempt.
	if v, _ := run(a.prog.Handler, arpFrame(t, macGW, macGW, "0.0.0.0"), ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Error("DAD probe dropped")
	}
	// Non-ARP traffic is not the guard's business.
	udp := udpFrame(t, ipInt, ipSrv, 1000, 2000)
	if v, _ := run(a.prog.Handler, udp, ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Error("non-ARP frame dropped")
	}

	if n, _ := a.ctr.Read(ARPGuardSpoofDropped); n != 2 {
		t.Errorf("spoof counter = %d, want 2", n)
	}
}

func TestARPGuardStrictMode(t *testing.T) {
	a := NewARPGuard()
	cfg := ARPGuardConfig{
		Bindings: []ARPBinding{{IP: "10.0.0.1", MAC: macHost.String()}},
		Strict:   true,
	}
	if err := a.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}
	if v, _ := run(a.prog.Handler, arpFrame(t, macGW, macGW, "10.0.0.99"), ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("unknown sender passed in strict mode")
	}
	if n, _ := a.ctr.Read(ARPGuardUnknownDropped); n != 1 {
		t.Errorf("unknown counter = %d, want 1", n)
	}
	// The untrusted direction filter leaves the trusted side alone.
	if v, _ := run(a.prog.Handler, arpFrame(t, macGW, macGW, "10.0.0.99"), ppe.DirOpticalToEdge); v != ppe.VerdictPass {
		t.Error("trusted-side ARP dropped")
	}
}

// --- DHCP snooping -----------------------------------------------------------

func dhcpFrame(t *testing.T, op uint8, mt packet.DHCPMsgType, yiaddr, ciaddr string, chaddr packet.MAC, sport, dport uint16) []byte {
	t.Helper()
	msg := packet.DHCPv4{
		Op: op, XID: 0xcafe, ClientMAC: chaddr,
		YourIP:   netip.MustParseAddr(yiaddr),
		ClientIP: netip.MustParseAddr(ciaddr),
		Options:  []packet.DHCPOption{{Code: packet.DHCPOptMsgType, Data: []byte{byte(mt)}}},
	}
	pl, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW,
		SrcIP: ipSrv, DstIP: ipInt,
		Proto: packet.IPProtocolUDP, SrcPort: sport, DstPort: dport,
		Payload: pl,
	})
}

func TestDHCPSnoopLearnsAndBlocksRogue(t *testing.T) {
	a := NewDHCPSnoop()
	if err := a.Configure(mustJSON(t, DHCPSnoopConfig{DropUntrustedRelease: true})); err != nil {
		t.Fatal(err)
	}

	ack := dhcpFrame(t, packet.DHCPOpReply, packet.DHCPAck, "10.0.0.42", "0.0.0.0", macHost,
		packet.PortDHCPServer, packet.PortDHCPClient)

	// A server ACK from the trusted (optical) side installs the lease.
	if v, _ := run(a.prog.Handler, ack, ppe.DirOpticalToEdge); v != ppe.VerdictPass {
		t.Error("trusted ACK dropped")
	}
	mac, ok := a.Binding([]byte{10, 0, 0, 42})
	if !ok {
		t.Fatal("lease not learned from trusted ACK")
	}
	if packet.MAC(mac) != macHost {
		t.Errorf("learned MAC %v, want %v", packet.MAC(mac), macHost)
	}

	// The same server message arriving from the edge is a rogue server.
	if v, _ := run(a.prog.Handler, ack, ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("rogue server ACK passed")
	}

	// A spoofed RELEASE for the learned lease from a different client MAC
	// is a lease-starvation attempt.
	spoofRel := dhcpFrame(t, packet.DHCPOpRequest, packet.DHCPRelease, "0.0.0.0", "10.0.0.42", macGW,
		packet.PortDHCPClient, packet.PortDHCPServer)
	if v, _ := run(a.prog.Handler, spoofRel, ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("spoofed RELEASE passed")
	}
	// The real owner may release.
	ownRel := dhcpFrame(t, packet.DHCPOpRequest, packet.DHCPRelease, "0.0.0.0", "10.0.0.42", macHost,
		packet.PortDHCPClient, packet.PortDHCPServer)
	if v, _ := run(a.prog.Handler, ownRel, ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Error("owner's RELEASE dropped")
	}

	// Client DISCOVER from the edge is ordinary traffic.
	disc := dhcpFrame(t, packet.DHCPOpRequest, packet.DHCPDiscover, "0.0.0.0", "0.0.0.0", macHost,
		packet.PortDHCPClient, packet.PortDHCPServer)
	if v, _ := run(a.prog.Handler, disc, ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Error("client DISCOVER dropped")
	}
	// Non-DHCP UDP is untouched.
	if v, _ := run(a.prog.Handler, udpFrame(t, ipInt, ipSrv, 1000, 2000), ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Error("non-DHCP frame dropped")
	}

	if n, _ := a.ctr.Read(DHCPSnoopLearned); n != 1 {
		t.Errorf("learned counter = %d, want 1", n)
	}
	if n, _ := a.ctr.Read(DHCPSnoopRogueDropped); n != 1 {
		t.Errorf("rogue counter = %d, want 1", n)
	}
	if n, _ := a.ctr.Read(DHCPSnoopReleaseDropped); n != 1 {
		t.Errorf("release counter = %d, want 1", n)
	}
}

// --- DNS blocklist -----------------------------------------------------------

func TestDNSBlockDropsBlockedNames(t *testing.T) {
	a := NewDNSBlock()
	cfg := DNSBlockConfig{Domains: []string{"ads.example"}}
	if err := a.Configure(mustJSON(t, cfg)); err != nil {
		t.Fatal(err)
	}

	if v, _ := run(a.prog.Handler, dnsQueryFrame(t, "ads.example"), ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("exact blocked name passed")
	}
	if v, _ := run(a.prog.Handler, dnsQueryFrame(t, "tracker.ads.example"), ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("subdomain of blocked name passed")
	}
	// The view lowercases labels during extraction.
	if v, _ := run(a.prog.Handler, dnsQueryFrame(t, "ADS.Example"), ppe.DirEdgeToOptical); v != ppe.VerdictDrop {
		t.Error("case variant passed")
	}
	if v, _ := run(a.prog.Handler, dnsQueryFrame(t, "good.example"), ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Error("innocent query dropped")
	}
	// Responses and off-direction traffic pass.
	if v, _ := run(a.prog.Handler, dnsQueryFrame(t, "ads.example"), ppe.DirOpticalToEdge); v != ppe.VerdictPass {
		t.Error("off-direction query dropped")
	}
	if v, _ := run(a.prog.Handler, udpFrame(t, ipInt, ipSrv, 1000, 2000), ppe.DirEdgeToOptical); v != ppe.VerdictPass {
		t.Error("non-DNS frame dropped")
	}

	if n, _ := a.ctr.Read(DNSBlockDropped); n != 3 {
		t.Errorf("dropped counter = %d, want 3", n)
	}
	if n, _ := a.ctr.Read(DNSBlockPassed); n != 1 {
		t.Errorf("passed counter = %d, want 1", n)
	}
}

// The dnsblock handler is the hardware fast-path model: steady-state
// processing must not allocate, query or not.
func TestDNSBlockHandlerZeroAlloc(t *testing.T) {
	a := NewDNSBlock()
	if err := a.Configure(mustJSON(t, DNSBlockConfig{Domains: []string{"ads.example"}})); err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{
		dnsQueryFrame(t, "good.example"),
		dnsQueryFrame(t, "a.very.long.sub.domain.of.ads.example"),
		udpFrame(t, ipInt, ipSrv, 1000, 2000),
	}
	ctx := &ppe.Ctx{Dir: ppe.DirEdgeToOptical}
	for _, f := range frames {
		allocs := testing.AllocsPerRun(200, func() {
			ctx.Data = f
			a.handle(ctx)
		})
		if allocs != 0 {
			t.Errorf("handler allocates %.1f/op on %d-byte frame", allocs, len(f))
		}
	}
}
