package paper

import (
	"fmt"

	"flexsfp/internal/build"
	"flexsfp/internal/core"
	"flexsfp/internal/exp"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
)

// ---------------------------------------------------------------------------
// §6 latency overhead: "which practical impact of introducing processing
// within the SFP, and when is the trade-off between added latency and
// early enforcement justified?"

// LatencyPoint is the per-frame-size comparison of a plain SFP retimer
// against the FlexSFP PPE path.
type LatencyPoint struct {
	FrameSize int
	PlainSFP  netsim.Duration
	FlexSFP   netsim.Duration
	Added     netsim.Duration
}

// LatencyOverheadResult is the sweep.
type LatencyOverheadResult struct {
	Points []LatencyPoint
}

// LatencyOverheadExperiment measures the in-cable processing latency the
// PPE adds over a plain transceiver, per frame size, by timing single
// frames through both modules. Timing single frames draws no
// randomness, so the result is seed-independent; the historical entry
// point pins seed 1.
func LatencyOverheadExperiment() (LatencyOverheadResult, error) {
	return latencySingle(exp.RunContext{Seed: 1})
}

func latencySingle(ctx exp.RunContext) (LatencyOverheadResult, error) {
	var res LatencyOverheadResult
	for _, size := range []int{64, 256, 512, 1024, 1518} {
		frame := packet.MustBuild(packet.Spec{
			SrcMAC: packet.MustMAC("02:00:00:00:00:71"),
			DstMAC: packet.MustMAC("02:00:00:00:00:72"),
			SrcIP:  mustAddr("10.0.0.1"), DstIP: mustAddr("10.0.0.2"),
			SrcPort: 1, DstPort: 2, PadTo: size,
		})

		// Plain SFP.
		simA := build.NewSim(ctx.Seed)
		sfp := core.NewStandardSFP(simA)
		var plainAt netsim.Time
		sfp.SetTx(core.PortOptical, func([]byte) { plainAt = simA.Now() })
		sfp.RxEdge(append([]byte(nil), frame...))
		simA.Run()

		// FlexSFP with NAT.
		simB := build.NewSim(ctx.Seed)
		mod, _, err := build.Module(simB, build.ModuleSpec{
			Name: "lat", DeviceID: 1, Shell: hls.TwoWayCore, App: "nat",
			ClockHz: ctx.ClockHz, DatapathBits: ctx.DatapathBits,
		})
		if err != nil {
			return res, err
		}
		var flexAt netsim.Time
		mod.SetTx(core.PortOptical, func([]byte) { flexAt = simB.Now() })
		mod.RxEdge(append([]byte(nil), frame...))
		simB.Run()

		res.Points = append(res.Points, LatencyPoint{
			FrameSize: size,
			PlainSFP:  netsim.Duration(plainAt),
			FlexSFP:   netsim.Duration(flexAt),
			Added:     netsim.Duration(flexAt) - netsim.Duration(plainAt),
		})
	}
	return res, nil
}

// Render formats the comparison.
func (r LatencyOverheadResult) Render() string {
	t := exp.NewTable("Frame", "Plain SFP", "FlexSFP (NAT)", "Added")
	for _, p := range r.Points {
		t.Add(fmt.Sprintf("%dB", p.FrameSize),
			p.PlainSFP.String(), p.FlexSFP.String(), p.Added.String())
	}
	out := "Latency overhead (§6): in-cable processing vs a plain transceiver\n" + t.String()
	out += "For context: one meter of fiber costs ~5 ns; a host-CPU detour costs ~1,000 ns (see the acceleration-gap experiment).\n"
	return out
}

func runLatency(ctx exp.RunContext) (exp.Result, error) {
	r, err := latencySingle(ctx)
	if err != nil {
		return nil, err
	}
	env := exp.Envelope{Name: "latency", Params: ctx.Params(), Detail: r}
	for _, p := range r.Points {
		env.Metrics = append(env.Metrics,
			exp.Scalar(fmt.Sprintf("added_ns_%db", p.FrameSize), "ns", float64(p.Added)))
	}
	return exp.NewResult(env, r.Render), nil
}
