package netsim

// eventHeap is an inlined 4-ary index-min heap ordered by (at, seq).
//
// It replaces the earlier container/heap implementation on the scheduler
// hot path: container/heap moves elements through `any`, which boxes the
// *Event on every Push/Pop and dispatches Less/Swap through an interface
// table. The inlined heap keeps everything monomorphic — push and pop are
// straight slice code the compiler can inline into schedule/Step.
//
// A 4-ary layout (children of i at 4i+1..4i+4) halves the tree depth of a
// binary heap: sift-up does half the comparisons, and sift-down's extra
// per-level comparisons stay inside one cache line of []*Event, which is
// the right trade for the deep pending queues the traffic sweeps build.
// Cancellation stays lazy (Event.canceled, skipped at pop), so the heap
// never needs arbitrary-index removal and events carry no heap index.
type eventHeap []*Event

// eventLess orders by timestamp, then by schedule sequence so same-time
// events fire FIFO.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts e, restoring the heap by sifting up.
func (h *eventHeap) push(e *Event) {
	hh := append(*h, e)
	i := len(hh) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(hh[i], hh[p]) {
			break
		}
		hh[i], hh[p] = hh[p], hh[i]
		i = p
	}
	*h = hh
}

// pop removes and returns the minimum event. The caller must ensure the
// heap is non-empty.
func (h *eventHeap) pop() *Event {
	hh := *h
	n := len(hh) - 1
	min := hh[0]
	hh[0] = hh[n]
	hh[n] = nil // release the reference for GC
	hh = hh[:n]
	*h = hh
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Min of the (up to four) children.
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(hh[j], hh[m]) {
				m = j
			}
		}
		if !eventLess(hh[m], hh[i]) {
			break
		}
		hh[i], hh[m] = hh[m], hh[i]
		i = m
	}
	return min
}
