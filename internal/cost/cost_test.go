package cost

import "testing"

func TestBOMBand(t *testing.T) {
	low, high := BOMTotal(FlexSFPBOM())
	// §5.2: FPGA $200 + transceiver ≈$10 + $50–100 other → ≈$260–310.
	if low < 255 || low > 265 {
		t.Errorf("BOM low = %.0f, want ≈260", low)
	}
	if high < 305 || high > 315 {
		t.Errorf("BOM high = %.0f, want ≈310", high)
	}
	plow, phigh := ProductionCostBand()
	if plow != 250 || phigh != 300 {
		t.Errorf("production band = %v-%v", plow, phigh)
	}
	// The volume estimate sits at/below the prototype BOM.
	if phigh > high {
		t.Error("production estimate exceeds prototype BOM")
	}
}

func TestTable3PublishedValues(t *testing.T) {
	rows := Table3()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[string][5]float64{ // rawLow, rawHigh, rawW, pubCostLow, pubW
		"DPU (BF-2)":          {1500, 2000, 75, 300, 15},
		"Many-core (Ag./DSC)": {800, 1200, 25, 100, 5},
		"FPGA (U25/U50)":      {2000, 4000, 60, 200, 8.5},
		"FlexSFP":             {250, 300, 1.5, 250, 1.5},
	}
	for _, r := range rows {
		w, ok := want[r.Name]
		if !ok {
			t.Errorf("unexpected row %q", r.Name)
			continue
		}
		if r.RawCostLowUSD != w[0] || r.RawCostHighUSD != w[1] || r.RawPowerW != w[2] ||
			r.PubPer10GCostLow != w[3] || r.PubPer10GPowerW != w[4] {
			t.Errorf("%s = %+v", r.Name, r)
		}
	}
}

func TestIdealScalingDPU(t *testing.T) {
	for _, r := range Table3() {
		if r.Name != "DPU (BF-2)" {
			continue
		}
		low, high := r.Per10GCost()
		// 1500-2000 over 5 slices = 300-400, the published band exactly.
		if low != 300 || high != 400 {
			t.Errorf("DPU per-10G cost = %.0f-%.0f", low, high)
		}
		if r.Per10GPower() != 15 {
			t.Errorf("DPU per-10G power = %.1f", r.Per10GPower())
		}
	}
}

func TestFlexSFPScalesToItself(t *testing.T) {
	for _, r := range Table3() {
		if r.Name != "FlexSFP" {
			continue
		}
		low, high := r.Per10GCost()
		if low != 250 || high != 300 || r.Per10GPower() != 1.5 {
			t.Errorf("FlexSFP per-10G = %.0f-%.0f / %.1f W", low, high, r.Per10GPower())
		}
	}
}

func TestComputedWithinShapeOfPublished(t *testing.T) {
	// The paper's per-10G numbers for the middle classes mix device
	// bases; computed values must still land within 2x of published
	// (shape, not absolutes).
	for _, r := range Table3() {
		low, _ := r.Per10GCost()
		if low < r.PubPer10GCostLow/2 || low > r.PubPer10GCostLow*2 {
			t.Errorf("%s computed $/10G %.0f vs published %.0f", r.Name, low, r.PubPer10GCostLow)
		}
		w := r.Per10GPower()
		if w < r.PubPer10GPowerW/2 || w > r.PubPer10GPowerW*2 {
			t.Errorf("%s computed W/10G %.1f vs published %.1f", r.Name, w, r.PubPer10GPowerW)
		}
	}
}

func TestHeadlineClaims(t *testing.T) {
	c := EvaluateClaims(Table3())
	// "roughly two-thirds CAPEX saving": FlexSFP ≈$275 vs DPU ≈$1750.
	if c.CAPEXSavingVsDPU < 0.60 || c.CAPEXSavingVsDPU > 0.90 {
		t.Errorf("CAPEX saving = %.2f, want ≈2/3 or better", c.CAPEXSavingVsDPU)
	}
	// "an order-of-magnitude power reduction": even the best SmartNIC
	// class is >2x worse per 10G; the DPU is 10x.
	if c.PowerRatioVsBest < 2 {
		t.Errorf("power ratio vs best SmartNIC = %.1f", c.PowerRatioVsBest)
	}
	var dpu Solution
	for _, r := range Table3() {
		if r.Name == "DPU (BF-2)" {
			dpu = r
		}
	}
	if dpu.Per10GPower()/1.5 < 10 {
		t.Errorf("DPU/FlexSFP power ratio = %.1f, want ≥10", dpu.Per10GPower()/1.5)
	}
}
