package paper

import (
	"fmt"
	"sort"

	"flexsfp/internal/apps"
	"flexsfp/internal/baseline"
	"flexsfp/internal/build"
	"flexsfp/internal/core"
	"flexsfp/internal/exp"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/trafficgen"
)

// ---------------------------------------------------------------------------
// §2 acceleration gap: the same micro-task on host CPU / SmartNIC / FlexSFP.

// GapPoint is one path's measured profile.
type GapPoint struct {
	Path       string
	P50, P99   netsim.Duration
	Throughput float64 // delivered pps
	PowerW     float64
	CostUSD    float64
}

// GapResult quantifies the acceleration gap.
type GapResult struct {
	OfferedPPS float64
	Points     []GapPoint
}

// AccelerationGapExperiment runs an ACL micro-task at 1 Mpps over the
// three paths of §2: host CPU (latency/jitter/contention), SmartNIC
// (cost/power overkill), and the FlexSFP cheap path.
func AccelerationGapExperiment(seed int64) (GapResult, error) {
	return gapSingle(exp.RunContext{Seed: seed})
}

func gapSingle(ctx exp.RunContext) (GapResult, error) {
	const offeredPPS = 1_000_000
	const frames = 20000
	res := GapResult{OfferedPPS: offeredPPS}

	percentiles := func(lat []netsim.Duration) (p50, p99 netsim.Duration) {
		if len(lat) == 0 {
			return 0, 0
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)/2], lat[len(lat)*99/100]
	}

	// Host CPU path, with 30% background contention.
	{
		sim := build.NewSim(ctx.Seed)
		var lat []netsim.Duration
		h := baseline.NewHostCPU(sim, func(d []byte, l netsim.Duration) { lat = append(lat, l) })
		h.Contention = 0.3
		gen := trafficgen.New(sim, trafficgen.Config{PPS: offeredPPS}, func(b []byte) bool {
			return h.Submit(b)
		})
		gen.Run(frames)
		sim.Run()
		p50, p99 := percentiles(lat)
		res.Points = append(res.Points, GapPoint{
			Path: h.Name(), P50: p50, P99: p99,
			Throughput: float64(len(lat)) / sim.Now().Seconds(),
			PowerW:     h.PowerW(), CostUSD: h.CostUSD(),
		})
	}

	// SmartNIC path.
	{
		sim := build.NewSim(ctx.Seed)
		var lat []netsim.Duration
		s := baseline.NewSmartNIC(sim, func(d []byte, l netsim.Duration) { lat = append(lat, l) })
		gen := trafficgen.New(sim, trafficgen.Config{PPS: offeredPPS}, func(b []byte) bool {
			return s.Submit(b)
		})
		gen.Run(frames)
		sim.Run()
		p50, p99 := percentiles(lat)
		res.Points = append(res.Points, GapPoint{
			Path: s.Name(), P50: p50, P99: p99,
			Throughput: float64(len(lat)) / sim.Now().Seconds(),
			PowerW:     s.PowerW(), CostUSD: s.CostUSD(),
		})
	}

	// FlexSFP path: the real module running the ACL app.
	{
		sim := build.NewSim(ctx.Seed)
		mod, _, err := build.Module(sim, build.ModuleSpec{
			Name: "gap-dut", DeviceID: 1, Shell: hls.TwoWayCore, App: "acl",
			ClockHz: ctx.ClockHz, DatapathBits: ctx.DatapathBits,
			Config: apps.ACLConfig{Rules: []apps.ACLRule{
				{DstPort: 22, Proto: 6, Deny: true, Priority: 10},
			}},
		})
		if err != nil {
			return res, err
		}
		var lat []netsim.Duration
		sent := map[int]netsim.Time{}
		n := 0
		mod.SetTx(1, func(b []byte) {
			lat = append(lat, sim.Now().Sub(sent[len(lat)]))
		})
		gen := trafficgen.New(sim, trafficgen.Config{PPS: offeredPPS}, func(b []byte) bool {
			sent[n] = sim.Now()
			n++
			mod.RxEdge(b)
			return true
		})
		gen.Run(frames)
		sim.Run()
		p50, p99 := percentiles(lat)
		res.Points = append(res.Points, GapPoint{
			Path: "flexsfp", P50: p50, P99: p99,
			Throughput: float64(len(lat)) / sim.Now().Seconds(),
			PowerW:     core.PeakPowerW(build.BaseClockHz, build.BaseDatapathBits, hls.TwoWayCore),
			CostUSD:    275,
		})
	}
	return res, nil
}

// Render formats the gap table.
func (r GapResult) Render() string {
	t := exp.NewTable("Path", "p50 latency", "p99 latency", "Power (W)", "Cost ($/port)")
	for _, p := range r.Points {
		t.Add(p.Path,
			fmt.Sprintf("%.2f µs", float64(p.P50)/1000),
			fmt.Sprintf("%.2f µs", float64(p.P99)/1000),
			fmt.Sprintf("%.1f", p.PowerW),
			fmt.Sprintf("%.0f", p.CostUSD))
	}
	return fmt.Sprintf("Acceleration gap (§2): ACL micro-task at %.0f pps\n", r.OfferedPPS) + t.String()
}

func runGap(ctx exp.RunContext) (exp.Result, error) {
	r, err := gapSingle(ctx)
	if err != nil {
		return nil, err
	}
	env := exp.Envelope{Name: "gap", Params: ctx.Params(), Detail: r}
	for _, p := range r.Points {
		env.Metrics = append(env.Metrics,
			exp.Scalar(p.Path+"_p99_us", "µs", float64(p.P99)/1000))
	}
	return exp.NewResult(env, r.Render), nil
}
