package mgmt

import (
	"encoding/binary"
	"net/netip"

	"flexsfp/internal/core"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
)

// FlowExporter realizes the Active-Core vision of §4.1: "the control
// plane is not limited to configuring the data plane, but can also
// originate and terminate traffic, transforming the SFP … into an active
// network component." It periodically drains a flow-accounting app's
// records and originates UDP export datagrams from the module's
// dedicated control-plane port — a self-contained NetFlow exporter
// living inside the transceiver.
type FlowExporter struct {
	sim *netsim.Simulator
	mod *core.Module

	// Collector addressing.
	SrcIP, DstIP     [4]byte
	SrcPort, DstPort uint16
	CollectorMAC     packet.MAC

	// MaxRecordsPerPacket bounds the datagram size.
	MaxRecordsPerPacket int

	ticker *netsim.Ticker

	Exported uint64 // flow records exported
	Packets  uint64 // export datagrams originated
}

// FlowSource is what the exporter drains — the netflow app implements it.
type FlowSource interface {
	Export() []FlowRecord
}

// FlowSourceFunc adapts a function (e.g. a closure converting an app's
// native record type) to FlowSource.
type FlowSourceFunc func() []FlowRecord

// Export implements FlowSource.
func (f FlowSourceFunc) Export() []FlowRecord { return f() }

// FlowRecord mirrors apps.FlowStat without importing apps (mgmt sits
// below the app catalog).
type FlowRecord struct {
	Key     []byte // 13-byte 5-tuple
	Packets uint64
	Bytes   uint64
}

// ExportRecordSize is the encoded size of one record: key(13) +
// packets(8) + bytes(8).
const ExportRecordSize = 13 + 8 + 8

// ExportHeaderSize is the datagram header: version(2) + count(2) +
// deviceID(4) + timestampNs(8).
const ExportHeaderSize = 16

// ExportVersion identifies the export format.
const ExportVersion = 1

// NewFlowExporter builds an exporter for an Active-Core module.
func NewFlowExporter(sim *netsim.Simulator, mod *core.Module) *FlowExporter {
	return &FlowExporter{
		sim:                 sim,
		mod:                 mod,
		SrcIP:               [4]byte{10, 255, 255, 1},
		DstIP:               [4]byte{10, 255, 255, 100},
		SrcPort:             9995,
		DstPort:             2055, // conventional NetFlow port
		CollectorMAC:        packet.MAC{0x02, 0xc0, 0x11, 0xec, 0x70, 0x01},
		MaxRecordsPerPacket: 24,
	}
}

// Start begins periodic export every interval; src supplies the records.
func (e *FlowExporter) Start(interval netsim.Duration, src FlowSource) {
	e.ticker = e.sim.Every(interval, func() bool {
		e.exportOnce(src)
		return true
	})
}

// Stop halts periodic export.
func (e *FlowExporter) Stop() {
	if e.ticker != nil {
		e.ticker.Stop()
	}
}

// ExportNow drains and sends immediately (also used by the ticker).
func (e *FlowExporter) ExportNow(src FlowSource) { e.exportOnce(src) }

func (e *FlowExporter) exportOnce(src FlowSource) {
	records := src.Export()
	for start := 0; start < len(records); start += e.MaxRecordsPerPacket {
		end := start + e.MaxRecordsPerPacket
		if end > len(records) {
			end = len(records)
		}
		e.sendBatch(records[start:end])
	}
}

func (e *FlowExporter) sendBatch(records []FlowRecord) {
	payload := make([]byte, ExportHeaderSize+len(records)*ExportRecordSize)
	binary.BigEndian.PutUint16(payload[0:2], ExportVersion)
	binary.BigEndian.PutUint16(payload[2:4], uint16(len(records)))
	binary.BigEndian.PutUint32(payload[4:8], e.mod.DeviceID())
	binary.BigEndian.PutUint64(payload[8:16], uint64(e.sim.Now()))
	off := ExportHeaderSize
	for _, r := range records {
		copy(payload[off:off+13], r.Key)
		binary.BigEndian.PutUint64(payload[off+13:], r.Packets)
		binary.BigEndian.PutUint64(payload[off+21:], r.Bytes)
		off += ExportRecordSize
	}

	frame, err := packet.Build(packet.Spec{
		SrcMAC:  e.mod.MAC(),
		DstMAC:  e.CollectorMAC,
		SrcIP:   addr4(e.SrcIP),
		DstIP:   addr4(e.DstIP),
		SrcPort: e.SrcPort,
		DstPort: e.DstPort,
		Payload: payload,
	})
	if err != nil {
		return
	}
	if e.mod.SendFrom(core.PortControl, frame) == nil {
		e.Packets++
		e.Exported += uint64(len(records))
	}
}

// ParseExport decodes an export datagram payload back into records (the
// collector side).
func ParseExport(payload []byte) (deviceID uint32, tsNs uint64, records []FlowRecord, err error) {
	if len(payload) < ExportHeaderSize {
		return 0, 0, nil, ErrShortMessage
	}
	if binary.BigEndian.Uint16(payload[0:2]) != ExportVersion {
		return 0, 0, nil, ErrBadVersion
	}
	n := int(binary.BigEndian.Uint16(payload[2:4]))
	deviceID = binary.BigEndian.Uint32(payload[4:8])
	tsNs = binary.BigEndian.Uint64(payload[8:16])
	if len(payload) < ExportHeaderSize+n*ExportRecordSize {
		return 0, 0, nil, ErrShortMessage
	}
	off := ExportHeaderSize
	for i := 0; i < n; i++ {
		records = append(records, FlowRecord{
			Key:     append([]byte(nil), payload[off:off+13]...),
			Packets: binary.BigEndian.Uint64(payload[off+13:]),
			Bytes:   binary.BigEndian.Uint64(payload[off+21:]),
		})
		off += ExportRecordSize
	}
	return deviceID, tsNs, records, nil
}

func addr4(b [4]byte) netip.Addr { return netip.AddrFrom4(b) }
