package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"flexsfp/internal/runner"
)

// Sharded is the conservatively-synchronized parallel simulation core: a
// topology partitioned across shards, each a full single-threaded
// Simulator (own event heap, clock, and SplitMix64-derived RNG stream),
// advanced together in bounded time windows.
//
// Synchronization is the classic lookahead/null-message discipline
// reduced to a window barrier: every cross-shard channel (Portal,
// usually a Link's propagation delay) declares a fixed positive latency,
// and the minimum latency L over all channels is the global lookahead. If
// the earliest pending event anywhere sits at time T, every shard may
// safely execute the window [T, T+L) in parallel — a message sent inside
// the window cannot arrive before T+L. At the window barrier, queued
// cross-shard messages are merged into the destination heaps and the next
// window starts. A topology with no cross-shard channels (disconnected
// partitions) has infinite lookahead: one window runs everything.
//
// Determinism is by construction, at any shard count including one:
//
//   - Shard assignment is a pure function of the logical partition index
//     (ShardFor), and per-shard seeds derive from (seed, shard) through
//     runner.TrialSeed.
//   - Model randomness must come from partition-keyed streams (Stream),
//     never from a shard's ambient RNG, so a partition's draws do not
//     depend on which shard hosts it or on its co-tenants.
//   - Cross-shard messages merge in (arrival time, portal id) order —
//     portal ids follow wiring order, which the topology fixes — and
//     window boundaries are global, so the interleaving of arrivals with
//     local events is identical for every shard count.
//   - Partitions may interact only through portals; two partitions must
//     never share mutable state directly.
//
// Under these rules the same seed produces byte-identical experiment
// output for shards ∈ {1, 2, 4, 8, ...}, which the golden-trace tests
// pin.
type Sharded struct {
	seed      int64
	shards    []*Simulator
	portals   []*Portal
	inbound   [][]*Portal // per destination shard, in portal-id order
	lookahead Duration    // min portal latency; 0 until a portal exists
}

// maxTime is the effectively-unbounded window limit used when no portal
// constrains progress.
const maxTime = Time(1) << 62

// streamSalt separates partition-stream seed derivation (Stream) from
// per-shard seed derivation (NewSharded), so a partition's stream never
// collides with a shard's ambient RNG.
const streamSalt = 0x73747265616d73 // "streams"

// NewSharded creates a parallel simulation world of n shards (clamped to
// at least one). Shard i starts at time zero with an RNG seeded
// runner.TrialSeed(seed, i).
func NewSharded(seed int64, n int) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{
		seed:    seed,
		shards:  make([]*Simulator, n),
		inbound: make([][]*Portal, n),
	}
	for i := range s.shards {
		s.shards[i] = New(runner.TrialSeed(seed, i))
	}
	return s
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard returns shard i's Simulator. Entities built on it must only be
// touched from its own event callbacks once a Run variant is active.
func (s *Sharded) Shard(i int) *Simulator { return s.shards[i] }

// ShardFor maps a logical partition index to its home shard — the
// deterministic round-robin assignment every sharded workload uses.
func (s *Sharded) ShardFor(partition int) int { return partition % len(s.shards) }

// Stream returns the deterministic random stream for one logical
// partition. It is a pure function of (seed, partition) — independent of
// the shard count and of shard placement — which is what keeps sharded
// experiment output byte-identical at any parallelism. Model code under
// Sharded must draw from here, not from Simulator.Rand.
func (s *Sharded) Stream(partition int) *rand.Rand {
	return runner.TrialRand(s.seed^streamSalt, partition)
}

// Pending returns the total number of events waiting across all shards.
func (s *Sharded) Pending() int {
	n := 0
	for _, sim := range s.shards {
		n += sim.Pending()
	}
	return n
}

// Fired returns the total number of events executed across all shards.
func (s *Sharded) Fired() uint64 {
	var n uint64
	for _, sim := range s.shards {
		n += sim.Fired()
	}
	return n
}

// Now returns the maximum shard clock — the frontier the world has
// reached. Individual shards may trail it by up to the lookahead.
func (s *Sharded) Now() Time {
	var max Time
	for _, sim := range s.shards {
		if sim.Now() > max {
			max = sim.Now()
		}
	}
	return max
}

// AlignClocks advances every shard to the maximum shard clock (executing
// any events at or before it) and returns that common epoch. Sharded
// workloads call it after wiring-time activity (module boots consume
// different amounts of simulated time on different shards) so that
// measurement windows start at the same instant everywhere. Must be
// called between Run invocations, never from inside an event.
func (s *Sharded) AlignClocks() Time {
	epoch := s.Now()
	for _, sim := range s.shards {
		sim.RunUntil(epoch)
	}
	return epoch
}

// Connect creates a cross-shard message channel from src to dst with the
// given fixed latency. The latency must be positive: it is the channel's
// contribution to the conservative lookahead, and a zero-latency channel
// would forbid any parallel progress. deliver runs on the destination
// shard at the arrival time. Wiring-time only — portals must exist before
// the first Run variant and their creation order must be a fixed property
// of the topology (it breaks arrival-time ties).
func (s *Sharded) Connect(src, dst int, latency Duration, deliver func([]byte)) *Portal {
	if latency <= 0 {
		panic("netsim: portal latency must be positive (it is the conservative lookahead)")
	}
	if src < 0 || src >= len(s.shards) || dst < 0 || dst >= len(s.shards) {
		panic(fmt.Sprintf("netsim: portal %d→%d outside shard range [0,%d)", src, dst, len(s.shards)))
	}
	p := &Portal{
		id:      len(s.portals),
		src:     src,
		dst:     dst,
		latency: latency,
		srcSim:  s.shards[src],
		dstSim:  s.shards[dst],
		deliver: deliver,
		ring:    make([]portalMsg, portalRingSize),
	}
	s.portals = append(s.portals, p)
	s.inbound[dst] = append(s.inbound[dst], p)
	if s.lookahead == 0 || latency < s.lookahead {
		s.lookahead = latency
	}
	return p
}

// ConnectLink builds a Link on the src shard whose frames cross to dst
// through a portal: serialization happens on src as usual, and the
// propagation delay rides the portal as lookahead, delivering on the dst
// shard. prop must be positive (see Connect).
func (s *Sharded) ConnectLink(src, dst int, bitsPerSec int64, prop Duration, deliver func([]byte)) *Link {
	p := s.Connect(src, dst, prop, deliver)
	l := NewLink(s.shards[src], bitsPerSec, prop, nil)
	l.remote = p
	return l
}

// Run executes events on all shards until every heap is empty and every
// portal has drained.
func (s *Sharded) Run() { s.run(0, false) }

// RunUntil executes all events at or before t on every shard, then
// advances every shard clock to exactly t.
func (s *Sharded) RunUntil(t Time) { s.run(t, true) }

// RunFor executes events for a span d beyond the current frontier (Now).
func (s *Sharded) RunFor(d Duration) { s.RunUntil(s.Now().Add(d)) }

// run is the conservative window loop. Each round: find the earliest
// pending event time T anywhere, grant every shard the window [T, end)
// where end = T + lookahead (unbounded when no portals exist), execute
// the windows in parallel, then merge queued cross-shard messages at the
// barrier. Progress is guaranteed because the event at T always fires.
func (s *Sharded) run(limit Time, bounded bool) {
	n := len(s.shards)
	if n == 1 && len(s.portals) == 0 {
		// Degenerate fast path: a plain single-threaded run. No windows,
		// no barriers — this is what keeps shards=1 within noise of the
		// pre-sharding simulator.
		if bounded {
			s.shards[0].RunUntil(limit)
		} else {
			s.shards[0].Run()
		}
		return
	}

	var (
		work []chan Time
		wg   sync.WaitGroup
	)
	if n > 1 {
		// Per-call worker goroutines: each owns one shard for the whole
		// Run invocation and executes the windows the coordinator hands
		// it. The WaitGroup barrier gives the happens-before edges that
		// make barrier-phase access to shard heaps and portal free lists
		// safe.
		work = make([]chan Time, n)
		for i := range work {
			work[i] = make(chan Time, 1)
			go func(sim *Simulator, ch <-chan Time) {
				for end := range ch {
					sim.runBefore(end)
					wg.Done()
				}
			}(s.shards[i], work[i])
		}
		defer func() {
			for i := range work {
				close(work[i])
			}
		}()
	}

	for {
		// Drain first: messages queued at wiring time (or by the previous
		// window) become heap events before the global minimum is taken,
		// so they both count toward T and fire inside this run.
		s.drain()
		T, ok := s.nextEventAt()
		if !ok || (bounded && T > limit) {
			break
		}
		end := maxTime
		if len(s.portals) > 0 {
			end = T.Add(s.lookahead)
		}
		if bounded && end > limit+1 {
			end = limit + 1 // RunUntil is inclusive: fire events at == limit
		}
		if n > 1 {
			wg.Add(n)
			for i := range work {
				work[i] <- end
			}
			wg.Wait()
		} else {
			s.shards[0].runBefore(end)
		}
	}
	if bounded {
		for _, sim := range s.shards {
			if sim.now < limit {
				sim.now = limit
			}
		}
	}
}

// nextEventAt returns the earliest pending event time across all shards.
func (s *Sharded) nextEventAt() (Time, bool) {
	var (
		min Time
		ok  bool
	)
	for _, sim := range s.shards {
		if t, has := sim.nextAt(); has && (!ok || t < min) {
			min, ok = t, true
		}
	}
	return min, ok
}

// drain runs at each window barrier on the coordinator: it moves every
// queued cross-shard message into its destination heap, merging each
// shard's inbound portals in (arrival time, portal id) order so the
// sequence numbers arrivals receive — and therefore same-time ordering —
// are a deterministic function of the topology, not of shard placement.
func (s *Sharded) drain() {
	for d := range s.inbound {
		in := s.inbound[d]
		if len(in) == 0 {
			continue
		}
		for {
			var (
				best    *Portal
				bestMsg portalMsg
			)
			// Strict < keeps the lowest-id portal on arrival-time ties
			// (inbound is in ascending portal-id order).
			for _, p := range in {
				if msg, ok := p.peekMsg(); ok && (best == nil || msg.at < bestMsg.at) {
					best, bestMsg = p, msg
				}
			}
			if best == nil {
				break
			}
			best.popMsg()
			best.scheduleArrival(bestMsg)
		}
	}
}

// portalRingSize is the SPSC ring capacity (messages per window per
// portal) before the producer spills to its overflow slice. Must be a
// power of two.
const portalRingSize = 1024

// portalMsg is one queued cross-shard frame.
type portalMsg struct {
	at   Time
	data []byte
}

// Portal is a unidirectional cross-shard channel with fixed latency. The
// source shard produces into a lock-free SPSC ring during window
// execution; the coordinator consumes at the window barrier and schedules
// arrival events on the destination shard. Steady-state Send and delivery
// are allocation-free: ring slots are values and arrival records recycle
// through a per-portal free list, so the pooled fast paths inside each
// shard (link frames, engine completions) stay intact across the shard
// boundary.
type Portal struct {
	id      int
	src     int
	dst     int
	latency Duration
	srcSim  *Simulator
	dstSim  *Simulator
	deliver func([]byte)

	// SPSC ring: the source worker stores and publishes via tail, the
	// coordinator consumes via head. head ≤ tail always; both only grow.
	ring []portalMsg
	head atomic.Uint64
	tail atomic.Uint64

	// spill absorbs windows that queue more than the ring capacity. Only
	// the producer appends (during a window) and only the coordinator
	// reads (at the barrier), with the barrier's happens-before between.
	spill    []portalMsg
	spillPos int

	// free recycles arrival events on the destination side. Pushed by
	// arrival.Complete (destination worker, inside a window) and popped
	// by scheduleArrival (coordinator, at the barrier); the phases never
	// overlap.
	free *arrival

	sent uint64
}

// Latency returns the portal's fixed crossing latency (its lookahead
// contribution).
func (p *Portal) Latency() Duration { return p.latency }

// Sent returns how many messages have entered the portal.
func (p *Portal) Sent() uint64 { return p.sent }

// Send queues data for delivery on the destination shard at the source
// shard's current time plus the portal latency. It must be called from
// the source shard (wiring-time or one of its event callbacks). The data
// slice is retained until the deliver callback runs.
func (p *Portal) Send(data []byte) {
	m := portalMsg{at: p.srcSim.now.Add(p.latency), data: data}
	t := p.tail.Load()
	if t-p.head.Load() < uint64(len(p.ring)) {
		p.ring[t&uint64(len(p.ring)-1)] = m
		p.tail.Store(t + 1)
	} else {
		p.spill = append(p.spill, m)
	}
	p.sent++
}

// peekMsg returns the oldest queued message without consuming it.
// Coordinator-only, at a barrier. Ring entries always precede spill
// entries: the producer only spills while the ring is full.
func (p *Portal) peekMsg() (portalMsg, bool) {
	if h := p.head.Load(); h != p.tail.Load() {
		return p.ring[h&uint64(len(p.ring)-1)], true
	}
	if p.spillPos < len(p.spill) {
		return p.spill[p.spillPos], true
	}
	return portalMsg{}, false
}

// popMsg consumes the message peekMsg returned. Coordinator-only.
func (p *Portal) popMsg() {
	if h := p.head.Load(); h != p.tail.Load() {
		p.ring[h&uint64(len(p.ring)-1)] = portalMsg{}
		p.head.Store(h + 1)
		return
	}
	p.spill[p.spillPos] = portalMsg{}
	p.spillPos++
	if p.spillPos == len(p.spill) {
		p.spill, p.spillPos = p.spill[:0], 0
	}
}

// scheduleArrival schedules the message's delivery on the destination
// shard through a pooled arrival record (no closure, no allocation in
// steady state).
func (p *Portal) scheduleArrival(m portalMsg) {
	a := p.free
	if a != nil {
		p.free = a.next
		a.next = nil
	} else {
		a = &arrival{p: p}
	}
	a.data = m.data
	p.dstSim.ScheduleCompletionAt(m.at, a)
}

// arrival is the pooled destination-side record of one queued message; it
// implements Completer so delivery rides the simulator's typed-event fast
// path.
type arrival struct {
	p    *Portal
	data []byte
	next *arrival
}

// Complete delivers the frame on the destination shard.
func (a *arrival) Complete() {
	p := a.p
	data := a.data
	// Recycle before delivering: the record's state is fully copied out,
	// so a delivery that triggers further sends may reuse it.
	a.data = nil
	a.next = p.free
	p.free = a
	p.deliver(data)
}
