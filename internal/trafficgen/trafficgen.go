// Package trafficgen generates deterministic synthetic workloads for the
// experiments: fixed-size streams at a target rate, the canonical IMIX
// blend, Zipf-distributed flow populations, and the per-subscriber access
// traffic (DNS + HTTPS + UDP) of the §2.1 telecom scenario. It stands in
// for the paper's line-rate traffic testers.
package trafficgen

import (
	"math/rand"
	"net/netip"
	"sync"

	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
	"flexsfp/internal/telemetry"
)

// maxPooledFrame is the buffer size the frame pool hands out: large
// enough for a 1518-byte frame plus tunnel/telemetry growth.
const maxPooledFrame = 2048

// framePool recycles emission buffers. Buffers are stored as fixed-size
// array pointers so both Get and Put are allocation-free (a *[N]byte fits
// in the interface word; no slice-header escape). The pool is shared by
// all generators and is safe across the parallel experiment runner —
// buffer contents are always fully overwritten on reuse, so recycling
// cannot perturb deterministic results.
var framePool = sync.Pool{New: func() any { return new([maxPooledFrame]byte) }}

// GetBuffer returns a frame buffer of length n, recycled when possible.
func GetBuffer(n int) []byte {
	if n > maxPooledFrame {
		return make([]byte, n)
	}
	a := framePool.Get().(*[maxPooledFrame]byte)
	return a[:n:maxPooledFrame]
}

// PutBuffer returns a buffer obtained from GetBuffer to the pool. Sinks
// call it once a frame's lifetime ends (after the verdict callback);
// buffers that were resliced or did not come from the pool are ignored.
// After PutBuffer the caller must not touch the slice again.
func PutBuffer(b []byte) {
	if cap(b) != maxPooledFrame {
		return
	}
	framePool.Put((*[maxPooledFrame]byte)(b[:maxPooledFrame]))
}

// IMIXEntry is one component of a size mix.
type IMIXEntry struct {
	Size   int
	Weight int
}

// SimpleIMIX is the classic 7:4:1 Internet mix (≈58%/33%/8%).
func SimpleIMIX() []IMIXEntry {
	return []IMIXEntry{{64, 7}, {594, 4}, {1518, 1}}
}

// Config describes a generated stream.
type Config struct {
	// PPS is the packet rate. Inter-arrival is constant (worst case for
	// line-rate tests); set Jitter to add exponential spacing noise.
	PPS float64
	// Sizes is the frame-size mix; a single entry gives fixed size.
	Sizes []IMIXEntry
	// Flows is the number of distinct 5-tuples; source ports (and low
	// source-IP bits) vary per flow.
	Flows int
	// ZipfS skews flow popularity (0 = uniform; 1.2 = heavy head).
	ZipfS float64
	// Jitter adds exponential inter-arrival noise with the given
	// fraction of the mean gap (0 = strictly paced).
	Jitter float64
	// SrcMAC/DstMAC/SrcIP/DstIP seed the header fields.
	SrcMAC, DstMAC packet.MAC
	SrcIP, DstIP   netip.Addr
	DstPort        uint16
	Proto          packet.IPProtocol

	// Rand, when set, replaces the simulator's ambient RNG for all of the
	// generator's draws (flow pick, size pick, jitter). Sharded
	// experiments must set it to a partition-keyed stream
	// (netsim.Sharded.Stream) so a generator's randomness is a function
	// of its logical partition, not of which shard hosts it — the
	// placement-invariance rule that keeps results byte-identical at any
	// shard count.
	Rand *rand.Rand

	// Templates, when set, bypasses the synthetic flow/size machinery:
	// emission draws from these pre-built frames by weight. This is how
	// the protocol-diverse profiles (ARP storms, DHCP churn, DNS-heavy
	// edge, elephant/mice) feed the generator — see NewProfile.
	Templates []WeightedFrame
}

// WeightedFrame is one pre-built template in a mixed-protocol profile.
type WeightedFrame struct {
	Frame  []byte
	Weight int
}

// Generator emits frames into a sink on a simulated schedule.
type Generator struct {
	sim  *netsim.Simulator
	cfg  Config
	rng  *rand.Rand
	sink func([]byte) bool

	frames    [][]byte // pre-built, one per (flow, size) combination
	sizeEdges []int    // cumulative weights
	sizeTotal int
	tmplEdges []int // cumulative template weights (template mode)
	tmplTotal int
	zipf      *rand.Zipf

	Sent    uint64
	Refused uint64 // sink returned false (downstream drop)

	// tracer, when set, samples emitted frames into the packet-trace ring
	// and threads the trace ID through the synchronous sink call. Only the
	// per-frame Run path traces; RunBurst hands whole batches to the sink,
	// where a single ambient ID cannot identify one frame (RunBurst is the
	// throughput path, Run the latency/trace-accurate reference).
	tracer *telemetry.Tracer

	stopped bool
}

// New builds a generator; frames go to sink (which reports acceptance).
func New(sim *netsim.Simulator, cfg Config, sink func([]byte) bool) *Generator {
	if cfg.PPS <= 0 {
		panic("trafficgen: PPS must be positive")
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []IMIXEntry{{Size: 64, Weight: 1}}
	}
	if cfg.Flows <= 0 {
		cfg.Flows = 1
	}
	if cfg.Proto == 0 {
		cfg.Proto = packet.IPProtocolUDP
	}
	if !cfg.SrcIP.IsValid() {
		cfg.SrcIP = netip.MustParseAddr("10.1.0.1")
	}
	if !cfg.DstIP.IsValid() {
		cfg.DstIP = netip.MustParseAddr("10.2.0.1")
	}
	if cfg.DstPort == 0 {
		cfg.DstPort = 80
	}
	g := &Generator{sim: sim, cfg: cfg, sink: sink}
	g.rng = cfg.Rand
	if g.rng == nil {
		g.rng = sim.Rand()
	}
	if len(cfg.Templates) > 0 {
		for _, wf := range cfg.Templates {
			if wf.Weight <= 0 || len(wf.Frame) == 0 {
				panic("trafficgen: template frames need content and positive weight")
			}
			g.frames = append(g.frames, wf.Frame)
			g.tmplTotal += wf.Weight
			g.tmplEdges = append(g.tmplEdges, g.tmplTotal)
		}
		return g
	}
	for _, e := range cfg.Sizes {
		g.sizeTotal += e.Weight
		g.sizeEdges = append(g.sizeEdges, g.sizeTotal)
	}
	if cfg.ZipfS > 0 && cfg.Flows > 1 {
		g.zipf = rand.NewZipf(g.rng, cfg.ZipfS+1, 1, uint64(cfg.Flows-1))
	}
	g.prebuild()
	return g
}

// prebuild materializes one frame per flow and size class; emission then
// just picks a template (allocation-free hot path).
func (g *Generator) prebuild() {
	src4 := g.cfg.SrcIP
	for f := 0; f < g.cfg.Flows; f++ {
		srcIP := src4
		if src4.Is4() {
			b := src4.As4()
			b[2] ^= byte(f >> 8)
			b[3] ^= byte(f)
			srcIP = netip.AddrFrom4(b)
		}
		for _, e := range g.cfg.Sizes {
			frame := packet.MustBuild(packet.Spec{
				SrcMAC: g.cfg.SrcMAC, DstMAC: g.cfg.DstMAC,
				SrcIP: srcIP, DstIP: g.cfg.DstIP,
				Proto:   g.cfg.Proto,
				SrcPort: uint16(1024 + f), DstPort: g.cfg.DstPort,
				PadTo: e.Size,
			})
			g.frames = append(g.frames, frame)
		}
	}
}

func (g *Generator) pickFrame() []byte {
	if g.tmplTotal > 0 {
		w := g.rng.Intn(g.tmplTotal)
		for i, edge := range g.tmplEdges {
			if w < edge {
				return g.frames[i]
			}
		}
	}
	flow := 0
	if g.cfg.Flows > 1 {
		if g.zipf != nil {
			flow = int(g.zipf.Uint64())
		} else {
			flow = g.rng.Intn(g.cfg.Flows)
		}
	}
	size := 0
	if len(g.cfg.Sizes) > 1 {
		w := g.rng.Intn(g.sizeTotal)
		for i, edge := range g.sizeEdges {
			if w < edge {
				size = i
				break
			}
		}
	}
	return g.frames[flow*len(g.cfg.Sizes)+size]
}

// gap returns the next inter-arrival time.
func (g *Generator) gap() netsim.Duration {
	mean := float64(netsim.Second) / g.cfg.PPS
	if g.cfg.Jitter > 0 {
		mean = mean*(1-g.cfg.Jitter) + g.rng.ExpFloat64()*mean*g.cfg.Jitter
	}
	d := netsim.Duration(mean)
	if d < 1 {
		d = 1
	}
	return d
}

// Run emits count frames (0 = until Stop), starting one gap from now.
func (g *Generator) Run(count uint64) {
	var emit func()
	emit = func() {
		if g.stopped || (count > 0 && g.Sent >= count) {
			return
		}
		frame := g.pickFrame()
		// Copy into a pooled buffer: downstream mutates frames in place
		// and may retain them until the verdict fires; consumers recycle
		// with PutBuffer when done.
		buf := GetBuffer(len(frame))
		copy(buf, frame)
		if tr := g.tracer; tr != nil {
			id, _ := tr.Sample()
			if id != 0 {
				tr.Hop(id, telemetry.StageGen, uint64(g.sim.Now()), len(buf), 0)
			}
			// Install the ambient ID (0 for unsampled frames) for the
			// synchronous sink chain: link Send, or module rx → PPE submit.
			tr.SetCurrent(id)
		}
		if g.sink(buf) {
			g.Sent++
		} else {
			g.Sent++
			g.Refused++
		}
		if g.tracer != nil {
			g.tracer.SetCurrent(0)
		}
		g.sim.ScheduleDetached(g.gap(), emit)
	}
	g.sim.ScheduleDetached(g.gap(), emit)
}

// RunBurst emits frames in batches of burst, handing each batch to sink
// as one slice per scheduler wakeup (the descriptor-ring shape DMA
// engines use): one simulator event covers burst frames instead of one
// each, with the batch's inter-arrival gaps accumulated so the average
// pacing matches Run exactly. sink returns how many frames the
// downstream accepted. Buffers are pooled like Run's; the consumer
// recycles them with PutBuffer. Intended for throughput benches and
// batch-capable shells — the per-frame Run path remains the reference
// for latency-accurate experiments.
func (g *Generator) RunBurst(count uint64, burst int, sink func([][]byte) int) {
	if burst < 1 {
		burst = 1
	}
	batch := make([][]byte, 0, burst)
	var emit func()
	emit = func() {
		if g.stopped || (count > 0 && g.Sent >= count) {
			return
		}
		batch = batch[:0]
		var wait netsim.Duration
		for i := 0; i < burst; i++ {
			if count > 0 && g.Sent+uint64(len(batch)) >= count {
				break
			}
			frame := g.pickFrame()
			buf := GetBuffer(len(frame))
			copy(buf, frame)
			batch = append(batch, buf)
			wait += g.gap()
		}
		accepted := sink(batch)
		g.Sent += uint64(len(batch))
		g.Refused += uint64(len(batch) - accepted)
		g.sim.ScheduleDetached(wait, emit)
	}
	g.sim.ScheduleDetached(g.gap(), emit)
}

// SetTracer attaches (or detaches, with nil) the packet-trace sampler.
// Wiring-time only.
func (g *Generator) SetTracer(tr *telemetry.Tracer) { g.tracer = tr }

// Stop halts emission after the current event.
func (g *Generator) Stop() { g.stopped = true }

// MeanFrameSize returns the weighted mean of the size mix (or of the
// template set in template mode).
func (g *Generator) MeanFrameSize() float64 {
	if len(g.cfg.Templates) > 0 {
		total, weight := 0, 0
		for _, wf := range g.cfg.Templates {
			total += len(wf.Frame) * wf.Weight
			weight += wf.Weight
		}
		return float64(total) / float64(weight)
	}
	total, weight := 0, 0
	for _, e := range g.cfg.Sizes {
		total += e.Size * e.Weight
		weight += e.Weight
	}
	return float64(total) / float64(weight)
}
