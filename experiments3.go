package flexsfp

import (
	"fmt"

	"flexsfp/internal/core"
	"net/netip"

	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
)

// ---------------------------------------------------------------------------
// §6 form-factor scaling: "can this approach be extended to higher-speed
// and higher-density form factors like QSFP-DD or OSFP while meeting
// power and thermal constraints?"

// FormFactorResult sweeps target rates × process nodes through the
// form-factor planner.
type FormFactorResult struct {
	Plans []core.FormFactorPlan
}

// FormFactorExperiment plans PPE configurations for 10/25/100/400 Gb/s on
// 28/16/7 nm silicon and reports which pluggable module each lands in.
func FormFactorExperiment() FormFactorResult {
	var res FormFactorResult
	rates := []float64{10, 25, 100, 400}
	nodes := []core.ProcessNode{core.Node28, core.Node16, core.Node7}
	for _, rate := range rates {
		for _, node := range nodes {
			res.Plans = append(res.Plans, core.PlanFormFactor(rate, node))
		}
	}
	return res
}

// Render formats the sweep.
func (r FormFactorResult) Render() string {
	t := newTable("Target", "Process", "Config", "Capacity (Gb/s)", "Peak W", "Module")
	for _, p := range r.Plans {
		if !p.Feasible {
			t.add(fmt.Sprintf("%.0fG", p.TargetGbps), p.Node.Name, "-", "-", "-", "infeasible")
			continue
		}
		t.add(fmt.Sprintf("%.0fG", p.TargetGbps), p.Node.Name,
			fmt.Sprintf("%db×%d @ %.0fMHz", p.DatapathBits, p.Engines, float64(p.ClockHz)/1e6),
			fmt.Sprintf("%.1f", p.CapacityGbps),
			fmt.Sprintf("%.2f", p.PeakW),
			p.Module.Name)
	}
	return "Form-factor scaling (§6): target rate × silicon node → smallest viable module\n" + t.String()
}

// ---------------------------------------------------------------------------
// §6 latency overhead: "which practical impact of introducing processing
// within the SFP, and when is the trade-off between added latency and
// early enforcement justified?"

// LatencyPoint is the per-frame-size comparison of a plain SFP retimer
// against the FlexSFP PPE path.
type LatencyPoint struct {
	FrameSize int
	PlainSFP  netsim.Duration
	FlexSFP   netsim.Duration
	Added     netsim.Duration
}

// LatencyOverheadResult is the sweep.
type LatencyOverheadResult struct {
	Points []LatencyPoint
}

// LatencyOverheadExperiment measures the in-cable processing latency the
// PPE adds over a plain transceiver, per frame size, by timing single
// frames through both modules.
func LatencyOverheadExperiment() (LatencyOverheadResult, error) {
	var res LatencyOverheadResult
	for _, size := range []int{64, 256, 512, 1024, 1518} {
		frame := packet.MustBuild(packet.Spec{
			SrcMAC: packet.MustMAC("02:00:00:00:00:71"),
			DstMAC: packet.MustMAC("02:00:00:00:00:72"),
			SrcIP:  mustAddrE("10.0.0.1"), DstIP: mustAddrE("10.0.0.2"),
			SrcPort: 1, DstPort: 2, PadTo: size,
		})

		// Plain SFP.
		simA := NewSim(1)
		sfp := core.NewStandardSFP(simA)
		var plainAt netsim.Time
		sfp.SetTx(core.PortOptical, func([]byte) { plainAt = simA.Now() })
		sfp.RxEdge(append([]byte(nil), frame...))
		simA.Run()

		// FlexSFP with NAT.
		simB := NewSim(1)
		mod, _, err := BuildModule(simB, ModuleSpec{
			Name: "lat", DeviceID: 1, Shell: TwoWayCore, App: "nat",
		})
		if err != nil {
			return res, err
		}
		var flexAt netsim.Time
		mod.SetTx(core.PortOptical, func([]byte) { flexAt = simB.Now() })
		mod.RxEdge(append([]byte(nil), frame...))
		simB.Run()

		res.Points = append(res.Points, LatencyPoint{
			FrameSize: size,
			PlainSFP:  netsim.Duration(plainAt),
			FlexSFP:   netsim.Duration(flexAt),
			Added:     netsim.Duration(flexAt) - netsim.Duration(plainAt),
		})
	}
	return res, nil
}

// Render formats the comparison.
func (r LatencyOverheadResult) Render() string {
	t := newTable("Frame", "Plain SFP", "FlexSFP (NAT)", "Added")
	for _, p := range r.Points {
		t.add(fmt.Sprintf("%dB", p.FrameSize),
			p.PlainSFP.String(), p.FlexSFP.String(), p.Added.String())
	}
	out := "Latency overhead (§6): in-cable processing vs a plain transceiver\n" + t.String()
	out += "For context: one meter of fiber costs ~5 ns; a host-CPU detour costs ~1,000 ns (see the acceleration-gap experiment).\n"
	return out
}

func mustAddrE(s string) netip.Addr { return netip.MustParseAddr(s) }
