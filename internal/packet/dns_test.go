package packet

import (
	"errors"
	"testing"
)

func TestDNSQueryRoundTrip(t *testing.T) {
	q := &DNS{
		ID: 0x1234, RD: true,
		Questions: []DNSQuestion{{Name: "dns.example.com", Type: DNSTypeA, Class: DNSClassIN}},
	}
	data := serialize(t, fixOpts, q)
	var got DNS
	if err := got.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 || !got.RD || got.QR {
		t.Errorf("header = %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "dns.example.com" ||
		got.Questions[0].Type != DNSTypeA {
		t.Errorf("questions = %+v", got.Questions)
	}
}

func TestDNSResponseWithAnswers(t *testing.T) {
	r := &DNS{
		ID: 7, QR: true, RA: true, AA: true,
		Questions: []DNSQuestion{{Name: "doh.dns.example", Type: DNSTypeHTTPS, Class: DNSClassIN}},
		Answers: []DNSAnswer{
			{Name: "doh.dns.example", Type: DNSTypeA, Class: DNSClassIN, TTL: 300, Data: []byte{1, 2, 3, 4}},
			{Name: "doh.dns.example", Type: DNSTypeAAAA, Class: DNSClassIN, TTL: 300, Data: make([]byte, 16)},
		},
	}
	data := serialize(t, fixOpts, r)
	var got DNS
	if err := got.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if !got.QR || !got.AA || !got.RA {
		t.Errorf("flags = %+v", got)
	}
	if len(got.Answers) != 2 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	if got.Answers[0].TTL != 300 || len(got.Answers[0].Data) != 4 {
		t.Errorf("answer 0 = %+v", got.Answers[0])
	}
	if got.Answers[1].Type != DNSTypeAAAA {
		t.Errorf("answer 1 type = %d", got.Answers[1].Type)
	}
}

func TestDNSOverUDPDecode(t *testing.T) {
	q := &DNS{ID: 9, RD: true, Questions: []DNSQuestion{{Name: "a.b", Type: DNSTypeA, Class: DNSClassIN}}}
	ip := &IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: ip1, DstIP: ip2}
	udp := &UDP{SrcPort: 3333, DstPort: PortDNS}
	if err := udp.SetNetworkLayerForChecksum(ip1, ip2); err != nil {
		t.Fatal(err)
	}
	data := serialize(t, fixOpts,
		&Ethernet{SrcMAC: macA, DstMAC: macB, EtherType: EtherTypeIPv4},
		ip, udp, q)
	pkt := NewPacket(data, LayerTypeEthernet)
	if pkt.ErrorLayer() != nil {
		t.Fatal(pkt.ErrorLayer())
	}
	d := pkt.Layer(LayerTypeDNS)
	if d == nil {
		t.Fatal("DNS layer not decoded from UDP port 53")
	}
	if d.(*DNS).Questions[0].Name != "a.b" {
		t.Errorf("question = %+v", d.(*DNS).Questions)
	}
}

func TestDNSCompressionPointer(t *testing.T) {
	// Hand-built response: question "x.yz" at offset 12, answer name is a
	// pointer back to offset 12.
	msg := []byte{
		0x00, 0x01, 0x80, 0x00, // ID, QR=1
		0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, // counts
		1, 'x', 2, 'y', 'z', 0, // name at offset 12
		0x00, 0x01, 0x00, 0x01, // qtype A, class IN
		0xc0, 12, // answer name: pointer to offset 12
		0x00, 0x01, 0x00, 0x01, // type A, class IN
		0x00, 0x00, 0x00, 0x3c, // TTL 60
		0x00, 0x04, 9, 9, 9, 9, // rdlength 4, rdata
	}
	var d DNS
	if err := d.DecodeFromBytes(msg); err != nil {
		t.Fatal(err)
	}
	if d.Questions[0].Name != "x.yz" {
		t.Errorf("question name = %q", d.Questions[0].Name)
	}
	if d.Answers[0].Name != "x.yz" {
		t.Errorf("answer name = %q (compression pointer not followed)", d.Answers[0].Name)
	}
}

func TestDNSCompressionLoopRejected(t *testing.T) {
	// A pointer to itself must not loop forever. Forward/self pointers are
	// rejected outright.
	msg := []byte{
		0, 1, 0, 0,
		0, 1, 0, 0, 0, 0, 0, 0,
		0xc0, 12, // name: pointer to itself
		0, 1, 0, 1,
	}
	var d DNS
	if err := d.DecodeFromBytes(msg); !errors.Is(err, ErrBadHeader) {
		t.Errorf("err = %v, want ErrBadHeader", err)
	}
}

func TestDNSTruncatedAnswer(t *testing.T) {
	msg := []byte{
		0, 1, 0x80, 0,
		0, 0, 0, 1, 0, 0, 0, 0, // one answer
		1, 'a', 0, // answer name
		0, 1, 0, 1, 0, 0, 0, 60,
		0, 50, // rdlength 50, but no rdata follows
	}
	var d DNS
	if err := d.DecodeFromBytes(msg); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestDNSBadLabels(t *testing.T) {
	buf := NewSerializeBuffer()
	d := &DNS{Questions: []DNSQuestion{{Name: "bad..label", Type: DNSTypeA, Class: DNSClassIN}}}
	if err := d.SerializeTo(buf, fixOpts); !errors.Is(err, ErrBadHeader) {
		t.Errorf("err = %v, want ErrBadHeader", err)
	}
}

func TestDNSTooShort(t *testing.T) {
	var d DNS
	if err := d.DecodeFromBytes(make([]byte, 11)); !errors.Is(err, ErrTooShort) {
		t.Errorf("err = %v, want ErrTooShort", err)
	}
}
