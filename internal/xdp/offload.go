package xdp

import (
	"fmt"

	"flexsfp/internal/fpga"
	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// Offload packages a verified XDP program as a ppe.Program so it rides
// the standard compile → bitstream → boot pipeline. The declarative
// structure models an hXDP-class soft datapath: a fixed execution core
// plus per-instruction incremental cost, with the instruction store in
// LSRAM.
//
// Calibration: hXDP's single-core Table 2 footprint (≈68,689 LUT6 ≈
// 109.9k LE with 1,799 kbit BRAM) is the *full* Xilinx artifact including
// its host AXI plumbing; the FlexSFP-resident core modeled here is the
// lean datapath variant, sized so that a maximal (4,096-instruction)
// program stays well inside the MPF200T next to the shell.
func Offload(p *Program) (*ppe.Program, error) {
	if err := p.Verify(); err != nil {
		return nil, err
	}
	prog := &ppe.Program{
		Name:        p.Name,
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet},
		Registers: []ppe.RegisterSpec{
			{Name: "xdp_regs", Bits: 64 * NumRegs},
		},
		Actions: []ppe.ActionSpec{
			// The checked-access unit and the ALU lanes, sized to the
			// program (expressed with the estimator's primitives).
			{Kind: ppe.ActionRewrite, Bits: alignedCost(len(p.Insns), 8)},
			{Kind: ppe.ActionHash, Bits: 32},
		},
		Stages: stagesFor(len(p.Insns)),
		// The soft core retires one instruction per clock, so a packet
		// occupies the input for the program length (worst case: every
		// instruction on the longest path executes). The optimizer's
		// packing pass overrides this with the VLIW schedule length.
		ProgCycles: len(p.Insns),
		Handler: ppe.HandlerFunc(func(ctx *ppe.Ctx) ppe.Verdict {
			act, err := p.Run(ctx.Data)
			if err != nil {
				return ppe.VerdictDrop // XDP_ABORTED
			}
			switch act {
			case ActPass:
				return ppe.VerdictPass
			case ActTx:
				return ppe.VerdictTx
			case ActRedirect:
				return ppe.VerdictRedirect
			default: // ActDrop, ActAborted, anything unknown
				return ppe.VerdictDrop
			}
		}),
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("xdp: offloaded program invalid: %w", err)
	}
	return prog, nil
}

// InsnsPerStage is the instruction-store capacity of one stage-equivalent
// of fabric: the soft core retires ~1k instructions per stage.
const InsnsPerStage = 1024

// stagesFor maps program size onto match-action stages with ceiling
// rounding, so an exact multiple of InsnsPerStage fills its stages
// without spilling an off-by-one extra stage (insns % per == 0 boundary):
// stagesFor(1024) == 1, stagesFor(1025) == 2. This is the same rounding
// hls.EstimateProgram applies to every other capacity (LSRAMBlocksFor,
// word counts), so the direct estimate and the HLS estimate agree at the
// boundaries.
func stagesFor(insns int) int {
	s := (insns + InsnsPerStage - 1) / InsnsPerStage
	if s < 1 {
		s = 1
	}
	if s > 4 {
		s = 4
	}
	return s
}

// alignedCost converts an instruction count into the estimator's aligned
// per-primitive cost units (per units each), clamped to the checked-access
// unit's [32, 4096] envelope. The clamps are inclusive so an exact
// boundary count (insns*per == 4096) prices the envelope itself rather
// than rounding past it.
func alignedCost(insns, per int) int {
	c := insns * per
	if c < 32 {
		c = 32
	}
	if c > 4096 {
		c = 4096
	}
	return c
}

// EstimateResources prices the offloaded program directly (without going
// through hls): fixed soft-core cost plus per-instruction increments,
// with the instruction store in LSRAM (one 64-bit word per instruction).
func EstimateResources(p *Program) fpga.Resources {
	insns := len(p.Insns)
	return fpga.Resources{
		LUT4:  18000 + 6*insns,
		FF:    15000 + 4*insns,
		USRAM: 40,
		LSRAM: fpga.LSRAMBlocksFor(insns * 64),
	}
}

// --- Small assembler helpers (for building programs in Go) -----------------

// MovImm sets dst = imm.
func MovImm(dst Reg, imm int64) Insn { return Insn{Op: OpMov, Dst: dst, Imm: imm, UseImm: true} }

// MovReg sets dst = src.
func MovReg(dst, src Reg) Insn { return Insn{Op: OpMov, Dst: dst, Src: src} }

// LdH loads a big-endian u16 from pkt[src+off] into dst.
func LdH(dst, src Reg, off int16) Insn { return Insn{Op: OpLdH, Dst: dst, Src: src, Off: off} }

// LdB loads a u8 from pkt[src+off] into dst.
func LdB(dst, src Reg, off int16) Insn { return Insn{Op: OpLdB, Dst: dst, Src: src, Off: off} }

// LdW loads a big-endian u32 from pkt[src+off] into dst.
func LdW(dst, src Reg, off int16) Insn { return Insn{Op: OpLdW, Dst: dst, Src: src, Off: off} }

// StB stores the low byte of imm to pkt[dst+off].
func StB(dst Reg, off int16, imm int64) Insn {
	return Insn{Op: OpStB, Dst: dst, Off: off, Imm: imm, UseImm: true}
}

// JEqImm jumps forward by off when dst == imm.
func JEqImm(dst Reg, imm int64, off int16) Insn {
	return Insn{Op: OpJEq, Dst: dst, Imm: imm, UseImm: true, Off: off}
}

// JNeImm jumps forward by off when dst != imm.
func JNeImm(dst Reg, imm int64, off int16) Insn {
	return Insn{Op: OpJNe, Dst: dst, Imm: imm, UseImm: true, Off: off}
}

// Exit returns r0.
func Exit() Insn { return Insn{Op: OpExit} }

// Return emits mov r0, action; exit.
func Return(action int64) []Insn {
	return []Insn{MovImm(0, action), Exit()}
}
