package netsim

import "flexsfp/internal/telemetry"

// Link models a unidirectional serial channel: frames are serialized one at
// a time at the link's bit rate, then delivered after the propagation delay.
// It captures the two quantities that matter for line-rate reasoning:
// serialization time (frame bytes + per-frame overhead, e.g. Ethernet
// preamble and inter-frame gap) and store-and-forward latency.
//
// A Link is not safe for concurrent use; it lives inside a Simulator.
type Link struct {
	sim *Simulator

	// BitsPerSec is the raw signalling rate available to frames
	// (e.g. 10e9 for 10GBASE-R after 64b/66b decode).
	BitsPerSec int64

	// Prop is the propagation delay of the medium.
	Prop Duration

	// OverheadBytes is charged per frame in addition to the frame length
	// (Ethernet: 7 preamble + 1 SFD + 12 IFG = 20 bytes).
	OverheadBytes int

	// QueueLimit bounds the number of frames waiting for serialization;
	// 0 means unbounded. Frames arriving at a full queue are dropped.
	QueueLimit int

	deliver func(data []byte)

	// down is set while the link is administratively or physically down
	// (a flap); frames offered meanwhile are dropped and counted.
	down bool

	// busyUntilPs tracks transmitter occupancy in picoseconds so that
	// back-to-back minimum frames at 10 Gb/s (67.2 ns each) accumulate
	// without rounding drift; delivery events round up to whole ns.
	busyUntilPs int64
	queued      int

	// free recycles in-flight frame records (see linkFrame). The link is
	// single-threaded inside its simulator, so an intrusive list suffices.
	free *linkFrame

	// tracer and depthHist are optional instruments (SetTelemetry): sampled
	// packet-trace hops at tx-done/delivery, and the transmit-queue depth
	// seen by each accepted frame. Both record zero-alloc and lock-free.
	tracer    *telemetry.Tracer
	depthHist *telemetry.Histogram

	// remote, when set (Sharded.ConnectLink), replaces local delivery: the
	// frame's propagation delay rides the portal to another shard, so only
	// the tx-done completion is scheduled locally (at txDone, not
	// txDone+Prop) and the rx side fires on the destination shard.
	remote *Portal

	stats LinkStats
}

// linkFrame is the pooled record of one in-flight frame. It backs both of
// the frame's scheduled completions — the tx-done stats tick and the
// delivery at tx-done + propagation — through the simulator's typed-event
// fast path, so Send allocates nothing in steady state. The tx-done event
// is scheduled first and always fires first (earlier-or-equal time,
// earlier sequence number), which the stage flag relies on.
type linkFrame struct {
	l       *Link
	data    []byte
	traceID uint64 // packet-trace identity captured at Send (0 = untraced)
	txeod   bool   // tx-done already fired; next Complete is the delivery
	next    *linkFrame
}

// Complete implements netsim.Completer for both of the frame's events.
func (f *linkFrame) Complete() {
	l := f.l
	if !f.txeod {
		// Frame has left the transmitter.
		f.txeod = true
		l.stats.TxFrames++
		l.stats.TxBytes += uint64(len(f.data))
		if l.tracer != nil {
			l.tracer.Hop(f.traceID, telemetry.StageLinkTx, uint64(l.sim.Now()), len(f.data), 0)
		}
		return
	}
	if l.queued > 0 {
		l.queued--
	}
	data := f.data
	id := f.traceID
	f.data = nil
	f.traceID = 0
	f.next = l.free
	l.free = f
	if l.remote != nil {
		// Cross-shard link: the propagation delay rides the portal (it is
		// the lookahead), so this second completion fired at tx-done and
		// the rx side — including any tracer hop — belongs to the
		// destination shard's deliver callback.
		l.remote.Send(data)
		return
	}
	if l.deliver == nil {
		return
	}
	if l.tracer != nil {
		// Delivery is the synchronous head of the downstream chain (module
		// rx → PPE submit), so the ambient register carries the trace ID
		// across it.
		l.tracer.Hop(id, telemetry.StageLinkRx, uint64(l.sim.Now()), len(data), 0)
		l.tracer.SetCurrent(id)
		l.deliver(data)
		l.tracer.SetCurrent(0)
		return
	}
	l.deliver(data)
}

// LinkStats counts traffic carried and dropped by a Link.
type LinkStats struct {
	TxFrames  uint64 // frames fully serialized onto the wire
	TxBytes   uint64 // frame bytes (excluding per-frame overhead)
	Drops     uint64 // frames dropped at a full queue
	DownDrops uint64 // frames dropped while the link was down
	Flaps     uint64 // up→down transitions
}

// NewLink creates a link inside sim delivering frames to deliver.
// The default per-frame overhead is the Ethernet preamble+IFG (20 bytes).
func NewLink(sim *Simulator, bitsPerSec int64, prop Duration, deliver func(data []byte)) *Link {
	if bitsPerSec <= 0 {
		panic("netsim: link rate must be positive")
	}
	return &Link{
		sim:           sim,
		BitsPerSec:    bitsPerSec,
		Prop:          prop,
		OverheadBytes: 20,
		deliver:       deliver,
	}
}

// SetDeliver replaces the delivery callback (used when wiring topologies
// after link construction).
func (l *Link) SetDeliver(deliver func(data []byte)) { l.deliver = deliver }

// SetTelemetry attaches the link's optional instruments: trace hops for
// sampled frames and a histogram of transmit-queue depth. Either may be
// nil. Wiring-time only.
func (l *Link) SetTelemetry(tracer *telemetry.Tracer, depth *telemetry.Histogram) {
	l.tracer = tracer
	l.depthHist = depth
}

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// SerializationTime returns how long a frame of n bytes occupies the wire,
// including per-frame overhead, rounded up to whole nanoseconds.
func (l *Link) SerializationTime(n int) Duration {
	return Duration(ceilDiv(l.serializationPs(n), 1000))
}

func (l *Link) serializationPs(n int) int64 {
	bits := int64(n+l.OverheadBytes) * 8
	return ceilDiv(bits*1_000_000_000_000, l.BitsPerSec)
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// Up reports whether the link is carrying traffic (true unless downed by
// SetUp(false), e.g. during an injected flap).
func (l *Link) Up() bool { return !l.down }

// SetUp raises or lowers the link. While down, Send drops every frame
// (counted in DownDrops). Lowering an already-down link is a no-op; each
// effective up→down transition counts one flap.
func (l *Link) SetUp(up bool) {
	if !up && !l.down {
		l.stats.Flaps++
	}
	l.down = !up
}

// Busy reports whether the transmitter is currently serializing a frame.
func (l *Link) Busy() bool { return int64(l.sim.Now())*1000 < l.busyUntilPs }

// QueueDepth returns the number of frames waiting behind the transmitter.
func (l *Link) QueueDepth() int { return l.queued }

// Send enqueues data for transmission. It returns false if the frame was
// dropped because the transmit queue is full. The data slice is retained
// until delivery; callers that reuse buffers must copy first.
func (l *Link) Send(data []byte) bool {
	if l.down {
		l.stats.DownDrops++
		return false
	}
	nowPs := int64(l.sim.Now()) * 1000
	startPs := l.busyUntilPs
	if startPs < nowPs {
		startPs = nowPs
	}
	if l.QueueLimit > 0 && startPs > nowPs && l.queued >= l.QueueLimit {
		l.stats.Drops++
		return false
	}
	txDonePs := startPs + l.serializationPs(len(data))
	l.busyUntilPs = txDonePs
	if startPs > nowPs {
		l.queued++
	}
	txDone := Time(ceilDiv(txDonePs, 1000))
	f := l.free
	if f != nil {
		l.free = f.next
		f.next = nil
		f.txeod = false
	} else {
		f = &linkFrame{l: l}
	}
	f.data = data
	if l.tracer != nil {
		f.traceID = l.tracer.Current()
	}
	if l.depthHist != nil {
		l.depthHist.Observe(uint64(l.queued))
	}
	l.sim.ScheduleCompletionAt(txDone, f)
	if l.remote != nil {
		// Cross-shard: the second completion hands the frame to the portal
		// at tx-done; the propagation delay is applied by the portal as it
		// crosses (Portal latency == Prop).
		l.sim.ScheduleCompletionAt(txDone, f)
	} else {
		l.sim.ScheduleCompletionAt(txDone.Add(l.Prop), f)
	}
	return true
}

// Utilization returns the fraction of the interval [since, now] during
// which the transmitter was busy, approximated from bytes carried. base
// must be the Stats() snapshot taken at time since: only the counter
// deltas since the snapshot count, so a window that starts mid-run is not
// charged for traffic carried before it. (The previous signature divided
// cumulative counters by the window length, overstating utilization for
// any since > 0.)
func (l *Link) Utilization(since Time, base LinkStats) float64 {
	elapsed := l.sim.Now().Sub(since)
	if elapsed <= 0 {
		return 0
	}
	frames := l.stats.TxFrames - base.TxFrames
	bytes := l.stats.TxBytes - base.TxBytes
	bits := float64(bytes+frames*uint64(l.OverheadBytes)) * 8
	return bits / (float64(l.BitsPerSec) * elapsed.Seconds())
}

// Pipe is a bidirectional channel built from two independent links with
// identical rate and propagation delay, named by convention A→B and B→A.
type Pipe struct {
	AtoB *Link
	BtoA *Link
}

// NewPipe builds a full-duplex pipe. Delivery callbacks are initially nil;
// wire them with SetDeliver on each direction.
func NewPipe(sim *Simulator, bitsPerSec int64, prop Duration) *Pipe {
	return &Pipe{
		AtoB: NewLink(sim, bitsPerSec, prop, nil),
		BtoA: NewLink(sim, bitsPerSec, prop, nil),
	}
}

// RateMeter accumulates frame/byte counts over simulated time to report
// average packet and bit rates.
type RateMeter struct {
	sim     *Simulator
	start   Time
	Frames  uint64
	Bytes   uint64
	MinSize int
	MaxSize int
}

// NewRateMeter creates a meter that measures from the current sim time.
func NewRateMeter(sim *Simulator) *RateMeter {
	return &RateMeter{sim: sim, start: sim.Now(), MinSize: -1}
}

// Observe records a frame of n bytes.
func (m *RateMeter) Observe(n int) {
	m.Frames++
	m.Bytes += uint64(n)
	if m.MinSize < 0 || n < m.MinSize {
		m.MinSize = n
	}
	if n > m.MaxSize {
		m.MaxSize = n
	}
}

// Reset restarts the measurement window at the current sim time.
func (m *RateMeter) Reset() {
	m.start = m.sim.Now()
	m.Frames, m.Bytes = 0, 0
	m.MinSize, m.MaxSize = -1, 0
}

// Elapsed returns the length of the measurement window.
func (m *RateMeter) Elapsed() Duration { return m.sim.Now().Sub(m.start) }

// PPS returns the average packet rate over the window.
func (m *RateMeter) PPS() float64 {
	sec := m.Elapsed().Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(m.Frames) / sec
}

// BitsPerSec returns the average payload bit rate over the window
// (frame bytes only; no per-frame overhead).
func (m *RateMeter) BitsPerSec() float64 {
	sec := m.Elapsed().Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(m.Bytes) * 8 / sec
}
