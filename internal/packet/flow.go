package packet

import (
	"fmt"
	"net/netip"
)

// Endpoint is one end of a transport flow.
type Endpoint struct {
	IP   netip.Addr
	Port uint16
}

func (e Endpoint) String() string {
	return fmt.Sprintf("%s:%d", e.IP, e.Port)
}

// Flow is a 5-tuple. It is comparable and usable as a map key.
type Flow struct {
	Proto IPProtocol
	Src   Endpoint
	Dst   Endpoint
}

func (f Flow) String() string {
	return fmt.Sprintf("%d %s->%s", f.Proto, f.Src, f.Dst)
}

// Reverse returns the flow with src and dst swapped.
func (f Flow) Reverse() Flow {
	return Flow{Proto: f.Proto, Src: f.Dst, Dst: f.Src}
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvAddr(h uint64, a netip.Addr) uint64 {
	if a.Is4() {
		b := a.As4()
		for _, c := range b {
			h = (h ^ uint64(c)) * fnvPrime64
		}
		return h
	}
	b := a.As16()
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

func fnvU16(h uint64, v uint16) uint64 {
	h = (h ^ uint64(v>>8)) * fnvPrime64
	h = (h ^ uint64(v&0xff)) * fnvPrime64
	return h
}

func endpointHash(e Endpoint) uint64 {
	return fnvU16(fnvAddr(fnvOffset64, e.IP), e.Port)
}

// Hash returns a directional 64-bit hash of the flow: A→B and B→A hash
// differently.
func (f Flow) Hash() uint64 {
	h := fnvAddr(fnvOffset64, f.Src.IP)
	h = fnvU16(h, f.Src.Port)
	h = fnvAddr(h, f.Dst.IP)
	h = fnvU16(h, f.Dst.Port)
	h = (h ^ uint64(f.Proto)) * fnvPrime64
	return h
}

// FastHash returns a symmetric 64-bit hash: A→B and B→A hash identically,
// which keeps both directions of a connection on the same bucket when
// load-balancing (the property Katran-style steering relies on).
func (f Flow) FastHash() uint64 {
	a := endpointHash(f.Src)
	b := endpointHash(f.Dst)
	// Commutative combine, then mix in the protocol.
	h := a + b
	h ^= a * b
	h = (h ^ uint64(f.Proto)) * fnvPrime64
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// FlowFromIPv4 builds a Flow from a decoded IPv4 header plus transport
// ports (zero for port-less protocols).
func FlowFromIPv4(ip *IPv4, srcPort, dstPort uint16) Flow {
	return Flow{
		Proto: ip.Protocol,
		Src:   Endpoint{IP: ip.SrcIP, Port: srcPort},
		Dst:   Endpoint{IP: ip.DstIP, Port: dstPort},
	}
}

// FlowFromIPv6 builds a Flow from a decoded IPv6 header plus transport
// ports (zero for port-less protocols).
func FlowFromIPv6(ip *IPv6, srcPort, dstPort uint16) Flow {
	return Flow{
		Proto: ip.NextHeader,
		Src:   Endpoint{IP: ip.SrcIP, Port: srcPort},
		Dst:   Endpoint{IP: ip.DstIP, Port: dstPort},
	}
}
