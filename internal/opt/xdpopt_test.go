package opt

import (
	"bytes"
	"math/rand"
	"testing"

	"flexsfp/internal/xdp"
)

// assertEquiv runs p and q over the same packets and demands identical
// actions, identical abort behavior, and identical final packet bytes.
func assertEquiv(t *testing.T, p, q *xdp.Program, pkts [][]byte) {
	t.Helper()
	for i, pkt := range pkts {
		a := append([]byte(nil), pkt...)
		b := append([]byte(nil), pkt...)
		actA, errA := p.Run(a)
		actB, errB := q.Run(b)
		if actA != actB || (errA == nil) != (errB == nil) {
			t.Fatalf("pkt %d: action %d/%v vs %d/%v", i, actA, errA, actB, errB)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("pkt %d: packet bytes diverge", i)
		}
	}
}

// corpus returns deterministic random packets spanning the sizes that
// exercise bounds checks around typical header offsets.
func corpus(seed int64, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		size := rng.Intn(128)
		if i%7 == 0 {
			size = rng.Intn(16) // short frames provoke aborts
		}
		b := make([]byte, size)
		rng.Read(b)
		pkts = append(pkts, b)
	}
	return pkts
}

func mustOpt(t *testing.T, p *xdp.Program) (*xdp.Program, XDPReport) {
	t.Helper()
	q, rep, err := OptimizeXDP(p, Options{})
	if err != nil {
		t.Fatalf("OptimizeXDP(%q): %v", p.Name, err)
	}
	if err := q.Verify(); err != nil {
		t.Fatalf("optimized %q unverifiable: %v", p.Name, err)
	}
	return q, rep
}

func TestFoldDupLoadsAndDeadWrites(t *testing.T) {
	p := &xdp.Program{Name: "dup-loads", Insns: []xdp.Insn{
		xdp.MovImm(1, 0),
		xdp.LdH(2, 1, 12), // ethertype
		xdp.LdH(3, 1, 12), // duplicate → mov r3, r2 → dead
		xdp.JNeImm(2, 0x0800, 2),
		xdp.MovImm(0, xdp.ActDrop),
		xdp.Exit(),
		xdp.MovImm(0, xdp.ActPass),
		xdp.Exit(),
	}}
	q, rep := mustOpt(t, p)
	if rep.FoldedLoads != 1 {
		t.Fatalf("FoldedLoads = %d, want 1", rep.FoldedLoads)
	}
	if rep.DeadWrites < 1 {
		t.Fatalf("DeadWrites = %d, want >= 1 (the folded copy is dead)", rep.DeadWrites)
	}
	if rep.InsnsAfter >= rep.InsnsBefore {
		t.Fatalf("insns %d -> %d, want shrink", rep.InsnsBefore, rep.InsnsAfter)
	}
	assertEquiv(t, p, q, corpus(1, 500))
}

func TestDupLoadKeptWhenPacketStored(t *testing.T) {
	p := &xdp.Program{Name: "store-barrier", Insns: []xdp.Insn{
		xdp.MovImm(1, 0),
		xdp.LdB(2, 1, 0),
		xdp.StB(1, 0, 0xFF), // mutates the byte the next load reads
		xdp.LdB(3, 1, 0),    // NOT a duplicate: must reload 0xFF
		xdp.MovImm(0, 0),
		xdp.Insn{Op: xdp.OpAdd, Dst: 0, Src: 3},
		xdp.Exit(),
	}}
	q, rep := mustOpt(t, p)
	if rep.FoldedLoads != 0 {
		t.Fatalf("folded a load across a packet store")
	}
	assertEquiv(t, p, q, corpus(2, 500))
}

func TestDeadLoadKeptForAbortSemantics(t *testing.T) {
	// The load result is never read, but the load's bounds check aborts
	// short frames — deleting it would turn aborts into passes.
	p := &xdp.Program{Name: "dead-load", Insns: []xdp.Insn{
		xdp.MovImm(1, 0),
		xdp.LdW(2, 1, 60), // r2 unread; aborts frames shorter than 64
		xdp.MovImm(0, xdp.ActPass),
		xdp.Exit(),
	}}
	q, rep := mustOpt(t, p)
	if rep.InsnsAfter != rep.InsnsBefore {
		t.Fatalf("insns %d -> %d: a faulting load was deleted", rep.InsnsBefore, rep.InsnsAfter)
	}
	assertEquiv(t, p, q, corpus(3, 500))
}

func TestElimUnreachableAndNoopJump(t *testing.T) {
	p := &xdp.Program{Name: "unreachable", Insns: []xdp.Insn{
		xdp.MovImm(0, xdp.ActPass),
		{Op: xdp.OpJmp, Off: 2}, // over two dead movs
		xdp.MovImm(0, xdp.ActDrop),
		xdp.MovImm(0, xdp.ActAborted),
		xdp.Exit(),
	}}
	q, rep := mustOpt(t, p)
	// The two dead movs, plus the jump itself once its whole span dies
	// and it becomes a fall-through.
	if rep.Unreachable != 3 {
		t.Fatalf("Unreachable = %d, want 3", rep.Unreachable)
	}
	if len(q.Insns) != 2 {
		t.Fatalf("optimized to %d insns, want 2 (mov, exit): %+v", len(q.Insns), q.Insns)
	}
	assertEquiv(t, p, q, corpus(4, 200))
}

func TestThreadJumpChains(t *testing.T) {
	// The trampoline at 7 jumps over a live block (the tx path reached
	// by the second branch), so only threading — not unreachable-code
	// elimination — can bypass it; once threaded, the trampoline itself
	// goes unreachable and dies next round.
	p := &xdp.Program{Name: "jump-chain", Insns: []xdp.Insn{
		xdp.MovImm(1, 0),
		xdp.LdB(2, 1, 0),
		xdp.JEqImm(2, 1, 4), // → 7, the trampoline
		xdp.LdB(3, 1, 1),
		xdp.JEqImm(3, 2, 3), // → 8, the tx block
		xdp.MovImm(0, xdp.ActPass),
		xdp.Exit(),
		{Op: xdp.OpJmp, Off: 2}, // → 10, the drop block
		xdp.MovImm(0, xdp.ActTx),
		xdp.Exit(),
		xdp.MovImm(0, xdp.ActDrop),
		xdp.Exit(),
	}}
	q, rep := mustOpt(t, p)
	if rep.ThreadedJumps < 1 {
		t.Fatalf("ThreadedJumps = %d, want >= 1", rep.ThreadedJumps)
	}
	if rep.Unreachable != 1 { // the threaded-past trampoline
		t.Fatalf("Unreachable = %d, want 1", rep.Unreachable)
	}
	if len(q.Insns) != len(p.Insns)-1 {
		t.Fatalf("optimized to %d insns, want %d", len(q.Insns), len(p.Insns)-1)
	}
	assertEquiv(t, p, q, corpus(5, 500))
}

func TestSelfCopyEliminated(t *testing.T) {
	p := &xdp.Program{Name: "self-copy", Insns: []xdp.Insn{
		xdp.MovImm(0, xdp.ActPass),
		xdp.MovReg(3, 3), // no-op
		xdp.Exit(),
	}}
	q, rep := mustOpt(t, p)
	if len(q.Insns) != 2 || rep.DeadWrites != 1 {
		t.Fatalf("self-copy not eliminated: %d insns, %d dead writes", len(q.Insns), rep.DeadWrites)
	}
	assertEquiv(t, p, q, corpus(6, 100))
}

func TestOptimizeXDPIdempotent(t *testing.T) {
	p := &xdp.Program{Name: "idem", Insns: []xdp.Insn{
		xdp.MovImm(1, 0),
		xdp.LdH(2, 1, 12),
		xdp.LdH(3, 1, 12),
		xdp.MovImm(4, 9), // dead
		xdp.JEqImm(2, 0x86DD, 2),
		xdp.MovImm(0, xdp.ActPass),
		xdp.Exit(),
		xdp.MovImm(0, xdp.ActDrop),
		xdp.Exit(),
	}}
	q1, _ := mustOpt(t, p)
	q2, rep2 := mustOpt(t, q1)
	if rep2.InsnsBefore != rep2.InsnsAfter ||
		rep2.Unreachable+rep2.DeadWrites+rep2.FoldedLoads+rep2.ThreadedJumps != 0 {
		t.Fatalf("second pass still changed the program: %+v", rep2)
	}
	if len(q2.Insns) != len(q1.Insns) {
		t.Fatalf("not idempotent: %d vs %d insns", len(q1.Insns), len(q2.Insns))
	}
}

func TestOptimizeXDPRejectsUnverifiable(t *testing.T) {
	p := &xdp.Program{Name: "bad", Insns: []xdp.Insn{xdp.MovImm(0, 0)}} // falls off end
	if _, _, err := OptimizeXDP(p, Options{}); err == nil {
		t.Fatal("want verification error")
	}
}

func TestScheduleCyclesIndependentPacks(t *testing.T) {
	p := &xdp.Program{Name: "wide", Insns: []xdp.Insn{
		xdp.MovImm(1, 1),
		xdp.MovImm(2, 2),
		xdp.MovImm(3, 3),
		xdp.MovImm(0, xdp.ActPass),
		xdp.Exit(),
	}}
	if got := ScheduleCycles(p, 4); got != 2 {
		t.Fatalf("width-4 schedule = %d cycles, want 2", got)
	}
	if got := ScheduleCycles(p, 1); got != 5 {
		t.Fatalf("width-1 schedule = %d cycles, want 5 (scalar)", got)
	}
}

func TestScheduleCyclesRAWSerializes(t *testing.T) {
	p := &xdp.Program{Name: "chain", Insns: []xdp.Insn{
		xdp.MovImm(0, 1),
		{Op: xdp.OpAdd, Dst: 0, Imm: 1, UseImm: true}, // RAW on r0
		{Op: xdp.OpAdd, Dst: 0, Imm: 1, UseImm: true},
		xdp.Exit(),
	}}
	// Each add reads the r0 the previous cycle wrote, and exit reads the
	// final r0 — four serial cycles even with four lanes.
	if got := ScheduleCycles(p, 4); got != 4 {
		t.Fatalf("dependent chain schedule = %d cycles, want 4", got)
	}
}

func TestScheduleCyclesMemOrdering(t *testing.T) {
	p := &xdp.Program{Name: "mem", Insns: []xdp.Insn{
		xdp.MovImm(1, 0),
		xdp.LdB(2, 1, 0), // RAW on r1: second cycle
		xdp.StB(1, 0, 7), // store after load: third cycle
		xdp.LdB(3, 1, 0), // load after store: fourth cycle (exit shares it)
		xdp.Exit(),
	}}
	if got := ScheduleCycles(p, 4); got != 4 {
		t.Fatalf("mem schedule = %d cycles, want 4", got)
	}
}

func TestOptimizeXDPRandomizedEquivalence(t *testing.T) {
	// Cross-check every hand-built test program once more on a bigger
	// corpus; the fuzz target generalizes this to arbitrary programs.
	progs := []*xdp.Program{
		dropUDP53(),
	}
	for _, p := range progs {
		q, rep := mustOpt(t, p)
		if rep.PackedCycles > rep.ScalarCycles {
			t.Fatalf("%s: packing made it slower: %d > %d", p.Name, rep.PackedCycles, rep.ScalarCycles)
		}
		assertEquiv(t, p, q, corpus(7, 2000))
	}
}

// dropUDP53 is the examples/xdp-offload program: parse Ethernet/IPv4,
// drop UDP destination port 53. Shared with the fuzz seed corpus.
func dropUDP53() *xdp.Program {
	return &xdp.Program{Name: "drop-udp-53", Insns: []xdp.Insn{
		xdp.MovImm(1, 0),
		xdp.LdH(2, 1, 12),        // ethertype
		xdp.JNeImm(2, 0x0800, 8), // not IPv4 → pass
		xdp.LdB(3, 1, 23),        // IPv4 protocol
		xdp.JNeImm(3, 17, 6),     // not UDP → pass
		xdp.LdB(4, 1, 14),        // IHL
		{Op: xdp.OpAnd, Dst: 4, Imm: 0x0F, UseImm: true},
		{Op: xdp.OpLsh, Dst: 4, Imm: 2, UseImm: true},
		{Op: xdp.OpAdd, Dst: 4, Imm: 16, UseImm: true}, // + eth + dport offset
		xdp.LdH(5, 4, 0),     // UDP dst port
		xdp.JEqImm(5, 53, 2), // port 53 → drop
		xdp.MovImm(0, xdp.ActPass),
		xdp.Exit(),
		xdp.MovImm(0, xdp.ActDrop),
		xdp.Exit(),
	}}
}
