package runner

import "math"

// Summary is the cross-trial statistic reported by every multi-seed
// experiment: sample mean, sample standard deviation (Bessel-corrected),
// extremes, and a normal-approximation 95% confidence half-width.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize reduces per-trial samples to a Summary. An empty slice yields
// the zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var sq float64
		for _, x := range xs {
			d := x - s.Mean
			sq += d * d
		}
		s.Stddev = math.Sqrt(sq / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of the 95% confidence interval for the mean
// (1.96·σ/√n; zero when fewer than two samples).
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Stddev / math.Sqrt(float64(s.N))
}

// Collect maps each result through f and summarizes — the idiom for
// turning []TrialResult into a per-metric Summary.
func Collect[T any](results []T, f func(T) float64) Summary {
	xs := make([]float64, len(results))
	for i, r := range results {
		xs[i] = f(r)
	}
	return Summarize(xs)
}
