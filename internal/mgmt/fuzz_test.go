package mgmt

// Native fuzz harnesses for the protocol surface: the frame decoder must
// never panic on hostile bytes and must round-trip what it accepts, and
// the agent must answer any byte string with a well-formed response.

import (
	"bytes"
	"sync"
	"testing"

	"flexsfp/internal/core"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/telemetry"
)

// newFuzzAgentModule mirrors newAgentModule without *testing.T: fuzz
// setup runs outside any test context, so errors panic instead.
func newFuzzAgentModule() (*core.Module, *Agent, *netsim.Simulator) {
	sim := netsim.New(1)
	reg := core.NewRegistry()
	reg.Register("stateful", newStatefulApp)
	m := core.NewModule(core.Config{
		Sim: sim, Name: "fuzz-7", DeviceID: 7,
		Shell: hls.TwoWayCore, Registry: reg, AuthKey: fleetKey,
	})
	app := newStatefulApp()
	d, err := hls.Compile(app.Program(), hls.Options{ClockHz: 156_250_000, DatapathBits: 64})
	if err != nil {
		panic(err)
	}
	enc, _ := d.Bitstream.Encode()
	if _, err := m.Install(1, enc); err != nil {
		panic(err)
	}
	if err := m.BootSync(1); err != nil {
		panic(err)
	}
	return m, NewAgent(m), sim
}

// seedMessages covers every request shape the client can emit, so the
// corpus starts on the interesting paths instead of random headers.
func seedMessages() [][]byte {
	var tableBody bodyWriter
	tableBody.str("nat")
	tableBody.bytes([]byte{10, 0, 0, 1})
	tableBody.bytes([]byte{192, 0, 2, 1})
	var traceBody bodyWriter
	traceBody.u32(16)
	seeds := [][]byte{
		Message{Type: MsgPing, ReqID: 1}.Encode(),
		Message{Type: MsgStats, ReqID: 2}.Encode(),
		Message{Type: MsgTableAdd, ReqID: 3, Body: tableBody.b}.Encode(),
		Message{Type: MsgTelemetry, ReqID: 4}.Encode(),
		Message{Type: MsgTraceDump, ReqID: 5, Body: traceBody.b}.Encode(),
		Message{Type: MsgError, ReqID: 6, Body: errorBody(CodeBadBody, "x")}.Encode(),
		Message{Type: MsgEEPROM, ReqID: 7}.Encode(),
		Message{Type: MsgOverlayRegister, ReqID: 8, Body: EncodeOverlayRegister(OverlayEndpoint{
			Name: "cable-0", IP: [4]byte{10, 254, 0, 1}, MAC: [6]byte{2, 0xcc, 0, 0, 0, 1},
			Mode: 2, VNI: 4001, GREKey: 701,
			Prefixes: []OverlayPrefix{{IP: [4]byte{10, 200, 1, 0}, Len: 24}},
		})}.Encode(),
		Message{Type: MsgOverlayWithdraw, ReqID: 9, Body: EncodeOverlayWithdraw("cable-0")}.Encode(),
		Message{Type: MsgOverlayPeers, ReqID: 10}.Encode(),
		Message{Type: MsgOK, ReqID: 11, Body: EncodeOverlayTable(OverlayTable{
			Generation: 3,
			Peers: []OverlayEndpoint{{Name: "cable-1", IP: [4]byte{10, 254, 0, 2},
				MAC: [6]byte{2, 0xcc, 0, 0, 0, 2}, Mode: 1, GREKey: 702,
				Prefixes: []OverlayPrefix{{IP: [4]byte{10, 200, 2, 0}, Len: 24, Priority: 1}}}},
			Routes: []OverlayRoute{{Prefix: OverlayPrefix{IP: [4]byte{10, 200, 2, 0}, Len: 24}, Peer: 0}},
		})}.Encode(),
	}
	// A few corrupted variants: truncated, bad magic, huge length.
	seeds = append(seeds, seeds[0][:5])
	bad := append([]byte(nil), seeds[1]...)
	bad[0] = 'X'
	seeds = append(seeds, bad)
	huge := append([]byte(nil), seeds[0]...)
	huge[8], huge[9], huge[10], huge[11] = 0xff, 0xff, 0xff, 0xff
	seeds = append(seeds, huge)
	return seeds
}

func FuzzDecodeMessage(f *testing.F) {
	for _, s := range seedMessages() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeMessage(data)
		if err != nil {
			return
		}
		// Anything the decoder accepts must survive an encode/decode
		// round trip unchanged.
		re, err := DecodeMessage(msg.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.Type != msg.Type || re.ReqID != msg.ReqID || !bytes.Equal(re.Body, msg.Body) {
			t.Fatalf("round trip changed message: %+v -> %+v", msg, re)
		}
	})
}

// fuzzAgent builds one shared module+agent for the whole fuzz process;
// per-exec module construction would dominate the run.
var fuzzAgent = sync.OnceValue(func() *Agent {
	_, a, _ := newFuzzAgentModule()
	reg := telemetry.New()
	reg.SetTracer(telemetry.NewTracer(1, 64))
	a.SetTelemetry(reg)
	return a
})

func FuzzAgentHandle(f *testing.F) {
	for _, s := range seedMessages() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a := fuzzAgent()
		resp := a.Handle(data)
		// Whatever comes in, the response must be a decodable protocol
		// message of type OK or Error.
		msg, err := DecodeMessage(resp)
		if err != nil {
			t.Fatalf("agent produced undecodable response: %v", err)
		}
		if msg.Type != MsgOK && msg.Type != MsgError {
			t.Fatalf("agent response type = %d", msg.Type)
		}
		if msg.Type == MsgError {
			if _, _, err := ParseError(msg.Body); err != nil {
				t.Fatalf("agent produced malformed error body: %v", err)
			}
		}
	})
}
