package flash

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"flexsfp/internal/bitstream"
)

func TestFactoryFresh(t *testing.T) {
	d := New()
	data, dt, err := d.Read(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if dt != 16*ReadTimePerByte {
		t.Errorf("read time = %v", dt)
	}
	for _, b := range data {
		if b != 0xff {
			t.Fatal("fresh flash not erased")
		}
	}
}

func TestProgramReadBack(t *testing.T) {
	d := New()
	want := []byte("hello flash")
	if _, err := d.ProgramPage(PageSize*3, want); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.Read(PageSize*3, len(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("read back %q", got)
	}
}

func TestNORSemantics(t *testing.T) {
	d := New()
	if _, err := d.ProgramPage(0, []byte{0x0f}); err != nil {
		t.Fatal(err)
	}
	// Clearing more bits is fine (0x0f -> 0x0e keeps programmed zeros).
	if _, err := d.ProgramPage(0, []byte{0x0e}); err != nil {
		t.Fatalf("clearing additional bits: %v", err)
	}
	// Setting a cleared bit back to 1 must fail.
	if _, err := d.ProgramPage(0, []byte{0xff}); !errors.Is(err, ErrNotErased) {
		t.Errorf("err = %v, want ErrNotErased", err)
	}
	// Erase restores the sector.
	if _, err := d.EraseSector(0); err != nil {
		t.Fatal(err)
	}
	got, _, _ := d.Read(0, 1)
	if got[0] != 0xff {
		t.Error("erase did not restore 0xff")
	}
}

func TestPageBoundary(t *testing.T) {
	d := New()
	// Crossing a page boundary is rejected.
	if _, err := d.ProgramPage(PageSize-4, make([]byte, 8)); !errors.Is(err, ErrBadAlignment) {
		t.Errorf("err = %v, want ErrBadAlignment", err)
	}
	// Oversized single program is rejected.
	if _, err := d.ProgramPage(0, make([]byte, PageSize+1)); !errors.Is(err, ErrBadAlignment) {
		t.Errorf("err = %v, want ErrBadAlignment", err)
	}
}

func TestEraseAlignment(t *testing.T) {
	d := New()
	if _, err := d.EraseSector(100); !errors.Is(err, ErrBadAlignment) {
		t.Errorf("err = %v, want ErrBadAlignment", err)
	}
}

func TestOutOfRange(t *testing.T) {
	d := New()
	if _, _, err := d.Read(SizeBytes-4, 8); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read: %v", err)
	}
	if _, err := d.EraseSector(SizeBytes); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("erase: %v", err)
	}
	if _, err := d.ProgramPage(-1, []byte{1}); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("program: %v", err)
	}
}

func TestWearTracking(t *testing.T) {
	d := New()
	for i := 0; i < 5; i++ {
		if _, err := d.EraseSector(SectorSize * 2); err != nil {
			t.Fatal(err)
		}
	}
	if w := d.SectorWear(SectorSize * 2); w != 5 {
		t.Errorf("wear = %d, want 5", w)
	}
	if w := d.SectorWear(0); w != 0 {
		t.Errorf("untouched sector wear = %d", w)
	}
	if d.MaxWear() != 5 {
		t.Errorf("MaxWear = %d", d.MaxWear())
	}
}

func TestWriteBlobTiming(t *testing.T) {
	d := New()
	data := bytes.Repeat([]byte{0x5a}, SectorSize+100) // 2 sectors, 17 pages
	dt, err := d.WriteBlob(0, data)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*SectorEraseTime + 17*PageProgramTime
	if dt != want {
		t.Errorf("WriteBlob time = %v, want %v", dt, want)
	}
	got, _, _ := d.Read(0, len(data))
	if !bytes.Equal(got, data) {
		t.Error("blob read back mismatch")
	}
}

func TestWriteBlobOverwrite(t *testing.T) {
	d := New()
	if _, err := d.WriteBlob(0, bytes.Repeat([]byte{0xaa}, 100)); err != nil {
		t.Fatal(err)
	}
	// Overwriting works because WriteBlob erases first.
	if _, err := d.WriteBlob(0, bytes.Repeat([]byte{0x55}, 100)); err != nil {
		t.Fatal(err)
	}
	got, _, _ := d.Read(0, 1)
	if got[0] != 0x55 {
		t.Error("overwrite failed")
	}
}

func TestCorruptRange(t *testing.T) {
	d := New()
	rng := rand.New(rand.NewSource(1))
	if err := d.CorruptRange(0, 64, func() byte { return byte(rng.Intn(256)) }); err != nil {
		t.Fatal(err)
	}
	got, _, _ := d.Read(0, 64)
	all := true
	for _, b := range got {
		if b != 0xff {
			all = false
		}
	}
	if all {
		t.Error("corruption had no effect")
	}
}

func encodedSample(t *testing.T, name string, flags uint16) []byte {
	t.Helper()
	bs := &bitstream.Bitstream{
		AppName: name, Device: "MPF200T", ClockKHz: 156250, DatapathBits: 64,
		Flags: flags, Payload: bytes.Repeat([]byte{1}, 500),
	}
	enc, err := bs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestSlotStoreLoad(t *testing.T) {
	d := New()
	enc := encodedSample(t, "acl", 0)
	if _, err := d.StoreBitstream(1, enc); err != nil {
		t.Fatal(err)
	}
	bs, _, err := d.LoadBitstream(1)
	if err != nil {
		t.Fatal(err)
	}
	if bs.AppName != "acl" {
		t.Errorf("AppName = %q", bs.AppName)
	}
	if _, _, err := d.LoadBitstream(2); !errors.Is(err, ErrSlotEmpty) {
		t.Errorf("empty slot: %v", err)
	}
}

func TestGoldenSlotLocked(t *testing.T) {
	d := New()
	golden := encodedSample(t, "golden-nat", bitstream.FlagGolden)
	if _, err := d.StoreBitstream(0, golden); err != nil {
		t.Fatal(err)
	}
	other := encodedSample(t, "acl", 0)
	if _, err := d.StoreBitstream(0, other); !errors.Is(err, ErrGoldenLocked) {
		t.Errorf("err = %v, want ErrGoldenLocked", err)
	}
	// Other slots remain writable.
	if _, err := d.StoreBitstream(3, other); err != nil {
		t.Fatal(err)
	}
	slots := d.ListSlots()
	if slots[0] != "golden-nat" || slots[3] != "acl" || slots[1] != "" {
		t.Errorf("slots = %v", slots)
	}
}

func TestSlotBounds(t *testing.T) {
	d := New()
	if _, err := d.StoreBitstream(NumSlots, nil); !errors.Is(err, ErrBadSlot) {
		t.Errorf("err = %v, want ErrBadSlot", err)
	}
	if _, _, err := d.LoadBitstream(-1); !errors.Is(err, ErrBadSlot) {
		t.Errorf("err = %v, want ErrBadSlot", err)
	}
}

func TestSlotCorruptionDetected(t *testing.T) {
	d := New()
	enc := encodedSample(t, "nat", 0)
	if _, err := d.StoreBitstream(1, enc); err != nil {
		t.Fatal(err)
	}
	addr, _ := SlotAddr(1)
	rng := rand.New(rand.NewSource(2))
	if err := d.CorruptRange(addr+80, 8, func() byte { return byte(rng.Intn(255)) }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.LoadBitstream(1); !errors.Is(err, ErrSlotEmpty) {
		t.Errorf("corrupted slot loaded: %v", err)
	}
}

// Property: program-then-read returns exactly what was written to a fresh
// region, for any page-sized payload.
func TestProgramReadProperty(t *testing.T) {
	f := func(page uint16, data []byte) bool {
		if len(data) > PageSize {
			data = data[:PageSize]
		}
		d := New()
		addr := (int(page) % 1024) * PageSize
		if _, err := d.ProgramPage(addr, data); err != nil {
			return false
		}
		got, _, err := d.Read(addr, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
