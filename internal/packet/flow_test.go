package packet

import (
	"encoding/binary"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestFlowFastHashSymmetric(t *testing.T) {
	f := Flow{
		Proto: IPProtocolTCP,
		Src:   Endpoint{IP: ip1, Port: 1234},
		Dst:   Endpoint{IP: ip2, Port: 80},
	}
	if f.FastHash() != f.Reverse().FastHash() {
		t.Error("FastHash is not symmetric")
	}
	if f.Hash() == f.Reverse().Hash() {
		t.Error("directional Hash should differ for reversed flow (collision this unlikely indicates a bug)")
	}
}

func TestFlowHashProtocolSensitive(t *testing.T) {
	f := Flow{Proto: IPProtocolTCP, Src: Endpoint{IP: ip1, Port: 1}, Dst: Endpoint{IP: ip2, Port: 2}}
	g := f
	g.Proto = IPProtocolUDP
	if f.FastHash() == g.FastHash() {
		t.Error("FastHash ignores protocol")
	}
}

func TestFlowFastHashSymmetricProperty(t *testing.T) {
	f := func(a, b [4]byte, pa, pb uint16, proto uint8) bool {
		fl := Flow{
			Proto: IPProtocol(proto),
			Src:   Endpoint{IP: netip.AddrFrom4(a), Port: pa},
			Dst:   Endpoint{IP: netip.AddrFrom4(b), Port: pb},
		}
		return fl.FastHash() == fl.Reverse().FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlowFastHashDistribution(t *testing.T) {
	// Hash 10k distinct flows into 8 buckets; no bucket should be wildly
	// off 1/8 (loose bound: within ±30%).
	const flows = 10000
	const buckets = 8
	var counts [buckets]int
	for i := 0; i < flows; i++ {
		var a, b [4]byte
		binary.BigEndian.PutUint32(a[:], uint32(i)|0x0a000000)
		binary.BigEndian.PutUint32(b[:], uint32(i*7+1)|0xc0000000)
		f := Flow{
			Proto: IPProtocolTCP,
			Src:   Endpoint{IP: netip.AddrFrom4(a), Port: uint16(i)},
			Dst:   Endpoint{IP: netip.AddrFrom4(b), Port: 443},
		}
		counts[f.FastHash()%buckets]++
	}
	want := flows / buckets
	for i, c := range counts {
		if c < want*7/10 || c > want*13/10 {
			t.Errorf("bucket %d has %d flows, want ≈%d", i, c, want)
		}
	}
}

func TestFlowFromIPv4(t *testing.T) {
	ip := &IPv4{Protocol: IPProtocolTCP, SrcIP: ip1, DstIP: ip2}
	f := FlowFromIPv4(ip, 5, 6)
	if f.Proto != IPProtocolTCP || f.Src.IP != ip1 || f.Dst.Port != 6 {
		t.Errorf("flow = %+v", f)
	}
}

func TestFlowFromIPv6(t *testing.T) {
	ip := &IPv6{NextHeader: IPProtocolUDP, SrcIP: ip61, DstIP: ip62}
	f := FlowFromIPv6(ip, 53, 5353)
	if f.Proto != IPProtocolUDP || f.Src.IP != ip61 || f.Src.Port != 53 {
		t.Errorf("flow = %+v", f)
	}
}

func TestFlowAsMapKey(t *testing.T) {
	m := map[Flow]int{}
	f := Flow{Proto: IPProtocolTCP, Src: Endpoint{IP: ip1, Port: 1}, Dst: Endpoint{IP: ip2, Port: 2}}
	m[f] = 42
	if m[f] != 42 {
		t.Error("flow not usable as map key")
	}
	if _, ok := m[f.Reverse()]; ok {
		t.Error("reversed flow should be a distinct key")
	}
}

func TestEndpointString(t *testing.T) {
	e := Endpoint{IP: ip1, Port: 99}
	if e.String() != "10.0.0.1:99" {
		t.Errorf("String = %q", e.String())
	}
}
