package paper

import (
	"fmt"

	"flexsfp/internal/build"
	"flexsfp/internal/core"
	"flexsfp/internal/exp"
	"flexsfp/internal/hls"
	"flexsfp/internal/netsim"
	"flexsfp/internal/phy"
	"flexsfp/internal/trafficgen"
)

// ---------------------------------------------------------------------------
// Figure 1 / §4.1: architecture comparison under bidirectional load.

// ArchPoint is one architecture × clock configuration.
type ArchPoint struct {
	Shell         hls.Shell
	ClockMHz      float64
	Bidirectional bool
	// DeliveredFrac is delivered/offered across both directions.
	DeliveredFrac float64
	// PPEFrac is the fraction of traffic that traversed the PPE (the
	// One-Way-Filter only processes one direction).
	PPEFrac float64
	PeakW   float64
}

// ArchitectureResult compares the Figure-1 shells.
type ArchitectureResult struct {
	Points []ArchPoint
}

// ArchitectureExperiment loads each shell with minimum-size line-rate
// traffic and measures what survives: One-Way-Filter carries both
// directions at 156.25 MHz (only one through the PPE); Two-Way-Core at
// the same clock saturates ("aggregating traffic from both interfaces
// effectively doubles the packet rate", §4.1); doubling the clock
// restores line rate.
func ArchitectureExperiment(seed int64) (ArchitectureResult, error) {
	return archSingle(exp.RunContext{Seed: seed})
}

func archSingle(ctx exp.RunContext) (ArchitectureResult, error) {
	var res ArchitectureResult
	type cfg struct {
		shell hls.Shell
		clock int64
		bidir bool
	}
	cases := []cfg{
		{hls.OneWayFilter, build.BaseClockHz, false},
		{hls.OneWayFilter, build.BaseClockHz, true},
		{hls.TwoWayCore, build.BaseClockHz, false},
		{hls.TwoWayCore, build.BaseClockHz, true},
		{hls.TwoWayCore, 2 * build.BaseClockHz, true},
	}
	for _, tc := range cases {
		sim := build.NewSim(ctx.Seed)
		mod, _, err := build.Module(sim, build.ModuleSpec{
			Name: "arch-dut", DeviceID: 1, Shell: tc.shell, App: "nat",
			ClockHz: tc.clock,
		})
		if err != nil {
			return res, err
		}
		var delivered uint64
		mod.SetTx(0, func(b []byte) { delivered++; trafficgen.PutBuffer(b) })
		mod.SetTx(1, func(b []byte) { delivered++; trafficgen.PutBuffer(b) })

		pps := phy.LineRatePPS(phy.DataRateBps, 64)
		var offered uint64
		genE := trafficgen.New(sim, trafficgen.Config{PPS: pps}, func(b []byte) bool {
			offered++
			mod.RxEdge(b)
			return true
		})
		genE.Run(0)
		var genO *trafficgen.Generator
		if tc.bidir {
			genO = trafficgen.New(sim, trafficgen.Config{PPS: pps}, func(b []byte) bool {
				offered++
				mod.RxOptical(b)
				return true
			})
			genO.Run(0)
		}
		sim.RunFor(netsim.Millisecond)
		genE.Stop()
		if genO != nil {
			genO.Stop()
		}
		sim.RunFor(50 * netsim.Microsecond)

		ppeFrac := 0.0
		if offered > 0 {
			ppeFrac = float64(mod.Engine().Stats().In+mod.Engine().Stats().QueueDrop) / float64(offered)
		}
		res.Points = append(res.Points, ArchPoint{
			Shell:         tc.shell,
			ClockMHz:      float64(tc.clock) / 1e6,
			Bidirectional: tc.bidir,
			DeliveredFrac: float64(delivered) / float64(offered),
			PPEFrac:       ppeFrac,
			PeakW:         core.PeakPowerW(tc.clock, build.BaseDatapathBits, tc.shell),
		})
	}
	return res, nil
}

// Render formats the comparison.
func (r ArchitectureResult) Render() string {
	t := exp.NewTable("Shell", "Clock (MHz)", "Load", "Delivered", "Via PPE", "Peak W")
	for _, p := range r.Points {
		load := "one-way"
		if p.Bidirectional {
			load = "two-way"
		}
		t.Add(p.Shell.String(), fmt.Sprintf("%.2f", p.ClockMHz), load,
			fmt.Sprintf("%.1f%%", p.DeliveredFrac*100),
			fmt.Sprintf("%.1f%%", p.PPEFrac*100),
			fmt.Sprintf("%.2f", p.PeakW))
	}
	return "Architecture comparison (Figure 1, §4.1): 64B line-rate load\n" + t.String()
}

func runArch(ctx exp.RunContext) (exp.Result, error) {
	r, err := archSingle(ctx)
	if err != nil {
		return nil, err
	}
	minDelivered := 1.0
	for _, p := range r.Points {
		if p.DeliveredFrac < minDelivered {
			minDelivered = p.DeliveredFrac
		}
	}
	env := exp.Envelope{
		Name: "arch", Params: ctx.Params(), Detail: r,
		Metrics: []exp.Metric{
			exp.Scalar("configurations", "", float64(len(r.Points))),
			exp.Scalar("min_delivered_frac", "frac", minDelivered),
		},
	}
	return exp.NewResult(env, r.Render), nil
}
