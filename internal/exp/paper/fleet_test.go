package paper

import (
	"bytes"
	"encoding/json"
	"testing"

	"flexsfp/internal/exp"
)

// fleetTestCtx keeps the test fleet small enough for tier-1 runs while
// still spanning many shards and waves.
func fleetTestCtx() exp.RunContext {
	return exp.RunContext{
		Seed: 11, Trials: 2, FaultRate: 0.3,
		FleetSize: 1500, FleetShards: 8,
	}
}

func fleetEnvelopeJSON(t *testing.T, ctx exp.RunContext) []byte {
	t.Helper()
	res, err := runFleetOTA(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res.Envelope())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetOTAInvariants drives the sharded controller through the chaos
// sweep and checks the headline robustness claims: every module is
// attempted, none ends on a bad image, and telemetry aggregates through
// exactly fleet-size member snapshots and shard-count folds.
func TestFleetOTAInvariants(t *testing.T) {
	ctx := fleetTestCtx()
	r, err := fleetSweep(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Modules != 1500 || r.Shards != 8 {
		t.Fatalf("modules=%d shards=%d", r.Modules, r.Shards)
	}
	if r.BadEnd != 0 {
		t.Fatalf("modules_bad_end = %d, want 0", r.BadEnd)
	}
	if r.MemberSnaps != r.Modules {
		t.Errorf("shard layer folded %d member snaps, want %d", r.MemberSnaps, r.Modules)
	}
	if r.ShardFolds != r.Shards {
		t.Errorf("global merge touched %d folds, want exactly %d shards", r.ShardFolds, r.Shards)
	}
	if len(r.Points) != len(fleetRateFracs) {
		t.Fatalf("sweep points = %d", len(r.Points))
	}
	zero := r.Points[0]
	if zero.UpdatedFrac.Mean != 1 || zero.BlastRadius.Mean != 0 || zero.Retries.Mean != 0 {
		t.Errorf("fault-free point not clean: updated=%v blast=%v retries=%v",
			zero.UpdatedFrac.Mean, zero.BlastRadius.Mean, zero.Retries.Mean)
	}
	max := r.Points[len(r.Points)-1]
	if max.InjectedFaults.Mean == 0 {
		t.Error("max-rate point injected no faults — the sweep is not exercising chaos")
	}
	if max.RolloutMs.Mean <= zero.RolloutMs.Mean {
		t.Errorf("rollout under chaos (%v ms) not slower than fault-free (%v ms)",
			max.RolloutMs.Mean, zero.RolloutMs.Mean)
	}
}

// TestFleetOTADeterministic pins the acceptance criterion: the whole
// envelope — params echo, summary metrics, every per-point CI — is
// byte-identical across runs at a fixed seed, including across worker
// parallelism settings.
func TestFleetOTADeterministic(t *testing.T) {
	ctx := fleetTestCtx()
	a := fleetEnvelopeJSON(t, ctx)
	b := fleetEnvelopeJSON(t, ctx)
	if !bytes.Equal(a, b) {
		t.Fatalf("fleet_ota envelope differs across identical runs:\n%s\n%s", a, b)
	}
	ctx.Parallelism = 2
	c := fleetEnvelopeJSON(t, ctx)
	ctx.Parallelism = 1
	d := fleetEnvelopeJSON(t, ctx)
	// Params echoes parallelism, so compare the detail payloads.
	var ec, ed exp.Envelope
	if err := json.Unmarshal(c, &ec); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(d, &ed); err != nil {
		t.Fatal(err)
	}
	jc, _ := json.Marshal(ec.Detail)
	jd, _ := json.Marshal(ed.Detail)
	if !bytes.Equal(jc, jd) {
		t.Fatalf("fleet_ota detail differs across -parallel settings:\n%s\n%s", jc, jd)
	}
}

// TestFleetOTARegistered checks the experiment is registered hidden:
// absent from wildcard selection, present by exact name.
func TestFleetOTARegistered(t *testing.T) {
	all, err := exp.Default.Select("all", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range all {
		if e.Name() == "fleet_ota" {
			t.Fatal("fleet_ota joined wildcard selection without opt-in")
		}
	}
	byName, err := exp.Default.Select("fleet_ota", false)
	if err != nil || len(byName) != 1 {
		t.Fatalf("exact-name selection: %v (%d matches)", err, len(byName))
	}
}
