package packet

import (
	"net/netip"
	"testing"
)

func dhcpSample(t *testing.T) []byte {
	t.Helper()
	msg := DHCPv4{
		Op: DHCPOpReply, XID: 0x01020304, Secs: 7,
		YourIP:    netip.MustParseAddr("10.0.0.42"),
		ServerIP:  netip.MustParseAddr("10.0.0.1"),
		ClientMAC: macA,
		Options: []DHCPOption{
			{Code: DHCPOptMsgType, Data: []byte{byte(DHCPAck)}},
			{Code: DHCPOptServerID, Data: []byte{10, 0, 0, 1}},
			{Code: DHCPOptLeaseTime, Data: []byte{0, 0, 0x0e, 0x10}},
		},
	}
	b, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDHCPv4RoundTrip(t *testing.T) {
	wire := dhcpSample(t)
	var d DHCPv4
	if err := d.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if d.Op != DHCPOpReply || d.XID != 0x01020304 || d.Secs != 7 {
		t.Fatalf("fixed fields: %+v", d)
	}
	if d.YourIP != netip.MustParseAddr("10.0.0.42") || d.ClientMAC != macA {
		t.Fatalf("addresses: %+v", d)
	}
	if mt, ok := d.MsgType(); !ok || mt != DHCPAck {
		t.Fatalf("msg type: %v %v", mt, ok)
	}
	if sid, ok := d.Option(DHCPOptServerID); !ok || len(sid) != 4 || sid[0] != 10 {
		t.Fatalf("server id: %v %v", sid, ok)
	}
}

func TestDHCPv4DecodeRejects(t *testing.T) {
	wire := dhcpSample(t)
	var d DHCPv4
	if err := d.DecodeFromBytes(wire[:100]); err == nil {
		t.Fatal("short message accepted")
	}
	bad := append([]byte(nil), wire...)
	bad[236] = 0 // clobber magic cookie
	if err := d.DecodeFromBytes(bad); err == nil {
		t.Fatal("missing cookie accepted")
	}
	trunc := append([]byte(nil), wire[:DHCPFixedLen+1]...) // option code, no length
	trunc[DHCPFixedLen] = DHCPOptMsgType
	if err := d.DecodeFromBytes(trunc); err == nil {
		t.Fatal("truncated option accepted")
	}
}

// Decoding reuses the Options slice across calls, like the DNS layer, so
// the zero-alloc Parser path can hold one DHCPv4 struct per pipeline.
func TestDHCPv4OptionReuse(t *testing.T) {
	wire := dhcpSample(t)
	var d DHCPv4
	if err := d.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	first := cap(d.Options)
	for i := 0; i < 8; i++ {
		if err := d.DecodeFromBytes(wire); err != nil {
			t.Fatal(err)
		}
	}
	if cap(d.Options) != first || len(d.Options) != 3 {
		t.Fatalf("options slice not reused: cap %d→%d len %d", first, cap(d.Options), len(d.Options))
	}
}
