package paper

import (
	"reflect"
	"testing"
)

func TestReconfigUnderFaultsCleanBaseline(t *testing.T) {
	res, err := ReconfigUnderFaultsExperiment(3, 2, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(faultRateFracs) {
		t.Fatalf("points = %d", len(res.Points))
	}
	p0 := res.Points[0]
	if p0.Rate != 0 {
		t.Fatalf("first point rate = %v, want 0", p0.Rate)
	}
	// With the injector silent the rollout must be perfect: every module
	// running the new image, with zero faults, retries, or recoveries.
	if p0.Availability.Mean != 1 || p0.UpgradeRate.Mean != 1 {
		t.Errorf("availability=%v upgraded=%v, want 1/1", p0.Availability.Mean, p0.UpgradeRate.Mean)
	}
	for name, s := range map[string]float64{
		"faults":    p0.InjectedFaults.Mean,
		"retries":   p0.ClientRetries.Mean,
		"rollbacks": p0.CanaryRollbacks.Mean,
		"golden":    p0.GoldenFallbacks.Mean,
		"watchdog":  p0.WatchdogTrips.Mean,
	} {
		if s != 0 {
			t.Errorf("%s = %v at rate 0, want 0", name, s)
		}
	}
	// Modules must stay reachable even at the highest fault rate: retries
	// and rollback keep the fleet available (self-healing, not surviving
	// by luck).
	last := res.Points[len(res.Points)-1]
	if last.Availability.Mean < 0.99 {
		t.Errorf("availability at max rate = %v", last.Availability.Mean)
	}
}

func TestReconfigUnderFaultsDeterministicAcrossParallelism(t *testing.T) {
	r1, err := ReconfigUnderFaultsExperiment(5, 3, 1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := ReconfigUnderFaultsExperiment(5, 3, 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r4) {
		t.Errorf("results differ across -parallel settings:\n1: %+v\n4: %+v", r1, r4)
	}
	// And at full rate the chaos actually bites: faults were injected.
	if r1.Points[len(r1.Points)-1].InjectedFaults.Mean == 0 {
		t.Error("no faults injected at rate 1.0")
	}
}
