// Quickstart: compile the paper's NAT case study, boot it in a FlexSFP,
// push traffic through, and print the Table 1-style implementation
// report plus live counters and power.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/netip"

	"flexsfp"
	"flexsfp/internal/apps"
	"flexsfp/internal/core"
	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
	"flexsfp/internal/trafficgen"
)

func main() {
	sim := flexsfp.NewSim(1)

	// 1. Compile the NAT app and boot it in a Two-Way-Core module.
	mod, design, err := flexsfp.BuildModule(sim, flexsfp.ModuleSpec{
		Name: "sfp-0", DeviceID: 1, Shell: flexsfp.TwoWayCore, App: "nat",
		Config: apps.NATConfig{Mappings: []apps.NATMapping{
			{Internal: "192.168.1.10", External: "203.0.113.10"},
			{Internal: "192.168.1.11", External: "203.0.113.11"},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Implementation report (%s, %s shell):\n", design.Target.Name, design.Shell)
	fmt.Printf("  app      %6d LUT4 %6d FF %4d uSRAM %4d LSRAM\n",
		design.App.LUT4, design.App.FF, design.App.USRAM, design.App.LSRAM)
	fmt.Printf("  shell    %6d LUT4 %6d FF %4d uSRAM %4d LSRAM\n",
		design.ShellRes.LUT4, design.ShellRes.FF, design.ShellRes.USRAM, design.ShellRes.LSRAM)
	fmt.Printf("  total    %6d LUT4 %6d FF %4d uSRAM %4d LSRAM (%.1f%% peak, %s-limited)\n",
		design.Total.LUT4, design.Total.FF, design.Total.USRAM, design.Total.LSRAM,
		design.Fit.Utilization.Max(), design.Fit.Limiting)
	fmt.Printf("  timing   %.2f MHz required, %.2f MHz achievable\n",
		float64(design.ClockHz)/1e6, design.AchievableClockMHz)

	// 2. Wire the optical side to a counter and translate some traffic.
	var translated, total int
	mod.SetTx(core.PortOptical, func(b []byte) {
		total++
		pkt := packet.NewPacket(b, packet.LayerTypeEthernet)
		if ip, ok := pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4); ok {
			if ip.SrcIP == netip.MustParseAddr("203.0.113.10") ||
				ip.SrcIP == netip.MustParseAddr("203.0.113.11") {
				translated++
			}
		}
	})
	mod.SetTx(core.PortEdge, func([]byte) {})

	gen := trafficgen.New(sim, trafficgen.Config{
		PPS:   1_000_000,
		SrcIP: netip.MustParseAddr("192.168.1.10"),
		DstIP: netip.MustParseAddr("198.51.100.1"),
	}, func(b []byte) bool { mod.RxEdge(b); return true })
	gen.Run(10000)
	sim.RunFor(20 * netsim.Millisecond)

	st := mod.Engine().Stats()
	fmt.Printf("\nTraffic: sent %d frames, %d egressed, %d source-translated\n",
		gen.Sent, total, translated)
	fmt.Printf("Engine: in=%d pass=%d drop=%d queue-drop=%d\n",
		st.In, st.Pass, st.Drop, st.QueueDrop)
	fmt.Printf("Power: %.3f W (idle floor %.3f W, SFP+ envelope %.1f W)\n",
		mod.PowerW(), 0.92, core.ThermalEnvelopeW)

	nat, _ := mod.App().State().Table("nat")
	fmt.Printf("NAT table: %d/%d entries\n", nat.Len(), apps.NATTableSize)
	ddm := mod.DDM()
	fmt.Printf("DDM: %.1f°C, TX %.1f dBm, bias %.1f mA\n",
		ddm.TemperatureC, ddm.TxPowerDBm, ddm.TxBiasMA)
}
