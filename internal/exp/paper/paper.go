// Package paper holds the FlexSFP evaluation suite: every table and
// figure of the paper (Tables 1–3, the §5 power measurement, the §5.1
// line-rate sweep, the §4.1 architecture comparison, the §5.3
// scalability/reliability studies, the §2 acceleration gap, the §2.1
// retrofit economics, the §6 form-factor and latency studies, and the
// §4.2 fault-injection chaos sweep) as self-registering
// internal/exp.Experiment plugins.
//
// Importing this package (even blank) populates exp.Default, which is
// how cmd/flexsfp-bench discovers them. Each experiment is addressable
// by name, takes every knob through exp.RunContext (seed, trials,
// parallelism, fault rate, clock/datapath overrides), and returns an
// exp.Result whose envelope carries headline metrics with 95% CIs and
// paper-reference deltas next to the full typed detail payload.
//
// The exported *Experiment functions keep their historical signatures;
// the deprecated shims in the root package delegate to them.
package paper

import (
	"fmt"
	"net/netip"

	"flexsfp/internal/runner"
)

// fmtCI renders "mean ± ci95" the way the trial tables print metrics.
func fmtCI(s runner.Summary, digits int) string {
	return fmt.Sprintf("%.*f ± %.*f", digits, s.Mean, digits, s.CI95())
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
