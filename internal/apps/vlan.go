package apps

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// VLANConfig configures the tagging app.
type VLANConfig struct {
	// VLAN is the tag pushed on edge→optical frames (access-port
	// semantics: the matching tag is popped optical→edge).
	VLAN     uint16 `json:"vlan"`
	Priority uint8  `json:"priority,omitempty"`
	// QinQ pushes a service tag (EtherType 0x88A8) on top of whatever
	// the frame carries — the legacy-environment L2 segmentation of §3.
	QinQ bool `json:"qinq,omitempty"`
}

// VLAN counter indexes (bank "tags").
const (
	VLANPushed = iota
	VLANPopped
	VLANPassed
	vlanCounters
)

// vlanApp implements §3 "Packet Transformation": VLAN tagging and QinQ
// for L2 segmentation in legacy environments, applied at the optical
// boundary without touching switch or host.
type vlanApp struct {
	prog  *ppe.Program
	state *ppe.State
	tags  *ppe.CounterBank
	cfg   VLANConfig
}

// NewVLAN builds a tagging instance.
func NewVLAN() *vlanApp {
	a := &vlanApp{state: ppe.NewState()}
	a.tags = a.state.AddCounters("tags", vlanCounters)
	a.prog = &ppe.Program{
		Name:        "vlan",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeDot1Q},
		Actions: []ppe.ActionSpec{
			{Kind: ppe.ActionPush, Bytes: 4},
			{Kind: ppe.ActionPop, Bytes: 4},
			{Kind: ppe.ActionCounterBank, Count: vlanCounters},
		},
		Stages:  1,
		Handler: ppe.HandlerFunc(a.handle),
	}
	return a
}

// Program implements core.App.
func (a *vlanApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *vlanApp) State() *ppe.State { return a.state }

// Configure implements core.App.
func (a *vlanApp) Configure(config []byte) error {
	if len(config) == 0 {
		return fmt.Errorf("vlan: config with a VLAN ID is required")
	}
	var cfg VLANConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return fmt.Errorf("vlan: %w", err)
	}
	if cfg.VLAN == 0 || cfg.VLAN > 4094 {
		return fmt.Errorf("vlan: VLAN ID %d out of range", cfg.VLAN)
	}
	a.cfg = cfg
	return nil
}

func (a *vlanApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	if len(ctx.Data) < 14 {
		return ppe.VerdictDrop
	}
	switch ctx.Dir {
	case ppe.DirEdgeToOptical:
		ctx.Data = a.push(ctx.Data)
		a.tags.Inc(VLANPushed, len(ctx.Data))
	case ppe.DirOpticalToEdge:
		out, popped := a.pop(ctx.Data)
		ctx.Data = out
		if popped {
			a.tags.Inc(VLANPopped, len(ctx.Data))
		} else {
			a.tags.Inc(VLANPassed, len(ctx.Data))
		}
	}
	return ppe.VerdictPass
}

// push inserts the configured tag after the MAC addresses.
func (a *vlanApp) push(data []byte) []byte {
	out := make([]byte, len(data)+4)
	copy(out[:12], data[:12])
	tpid := uint16(packet.EtherTypeDot1Q)
	if a.cfg.QinQ {
		tpid = uint16(packet.EtherTypeQinQ)
	}
	binary.BigEndian.PutUint16(out[12:14], tpid)
	tci := uint16(a.cfg.Priority&0x7)<<13 | a.cfg.VLAN&0x0fff
	binary.BigEndian.PutUint16(out[14:16], tci)
	copy(out[16:], data[12:])
	return out
}

// pop removes the outermost tag if it matches the configured VLAN.
func (a *vlanApp) pop(data []byte) ([]byte, bool) {
	if len(data) < 18 {
		return data, false
	}
	et := packet.EtherType(binary.BigEndian.Uint16(data[12:14]))
	if et != packet.EtherTypeDot1Q && et != packet.EtherTypeQinQ {
		return data, false
	}
	vid := binary.BigEndian.Uint16(data[14:16]) & 0x0fff
	if vid != a.cfg.VLAN {
		return data, false
	}
	out := make([]byte, len(data)-4)
	copy(out[:12], data[:12])
	copy(out[12:], data[16:])
	return out, true
}
