package fpga

import "fmt"

// Device describes an FPGA part.
type Device struct {
	Name     string
	Family   string
	Capacity Resources
	// LogicElements is the marketing logic-element count (≈ LUT4 count
	// for PolarFire), used for cross-vendor comparisons.
	LogicElements int
	// BRAMKbits is the total on-chip block RAM in kbit as vendors quote
	// it (the paper quotes 13,300 kbit ≈ 13.3 Mb for the MPF200T).
	BRAMKbits int
	// MaxClockMHz is the fabric clock ceiling for well-pipelined designs.
	MaxClockMHz float64
	// ProcessNm is the silicon process node.
	ProcessNm int
	// UnitCostUSD is the approximate per-unit price at 1k-unit volume
	// (the paper quotes ≈$200 for the MPF200T).
	UnitCostUSD float64
	// TypPowerW is the typical fabric power at full activity.
	TypPowerW float64
}

// PolarFire catalog. MPF200T numbers follow the paper's Table 1 "Avail."
// row exactly (192,408 LUT4/FF, 1,764 uSRAM, 616 LSRAM); siblings scale
// per the PolarFire family data sheet.
var (
	MPF100T = Device{
		Name: "MPF100T", Family: "PolarFire",
		Capacity:      Resources{LUT4: 108600, FF: 108600, USRAM: 1008, LSRAM: 352, Math: 336},
		LogicElements: 109000, BRAMKbits: 7600,
		MaxClockMHz: 400, ProcessNm: 28, UnitCostUSD: 130, TypPowerW: 0.5,
	}
	MPF200T = Device{
		Name: "MPF200T", Family: "PolarFire",
		Capacity:      Resources{LUT4: 192408, FF: 192408, USRAM: 1764, LSRAM: 616, Math: 588},
		LogicElements: 192000, BRAMKbits: 13300,
		MaxClockMHz: 400, ProcessNm: 28, UnitCostUSD: 200, TypPowerW: 0.7,
	}
	MPF300T = Device{
		Name: "MPF300T", Family: "PolarFire",
		Capacity:      Resources{LUT4: 299544, FF: 299544, USRAM: 2772, LSRAM: 952, Math: 924},
		LogicElements: 300000, BRAMKbits: 20600,
		MaxClockMHz: 400, ProcessNm: 28, UnitCostUSD: 320, TypPowerW: 1.0,
	}
	MPF500T = Device{
		Name: "MPF500T", Family: "PolarFire",
		Capacity:      Resources{LUT4: 481140, FF: 481140, USRAM: 4440, LSRAM: 1520, Math: 1480},
		LogicElements: 481000, BRAMKbits: 33000,
		MaxClockMHz: 400, ProcessNm: 28, UnitCostUSD: 550, TypPowerW: 1.6,
	}
)

// Catalog lists the modeled PolarFire devices, smallest first.
func Catalog() []Device {
	return []Device{MPF100T, MPF200T, MPF300T, MPF500T}
}

// DeviceByName looks a device up in the catalog.
func DeviceByName(name string) (Device, error) {
	for _, d := range Catalog() {
		if d.Name == name {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("fpga: unknown device %q", name)
}

// Utilization returns per-class utilization of r on the device.
func (d Device) Utilization(r Resources) Utilization {
	return Utilization{
		LUT4:  pct(r.LUT4, d.Capacity.LUT4),
		FF:    pct(r.FF, d.Capacity.FF),
		USRAM: pct(r.USRAM, d.Capacity.USRAM),
		LSRAM: pct(r.LSRAM, d.Capacity.LSRAM),
		Math:  pct(r.Math, d.Capacity.Math),
	}
}

// FitReport is the result of checking a design against a device.
type FitReport struct {
	Device      string
	Fits        bool
	Limiting    string // resource class that overflows (or is tightest)
	Utilization Utilization
}

// Fit checks whether r fits on the device and identifies the limiting
// resource class.
func (d Device) Fit(r Resources) FitReport {
	u := d.Utilization(r)
	rep := FitReport{Device: d.Name, Fits: r.FitsIn(d.Capacity), Utilization: u}
	max := -1.0
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"LUT4", u.LUT4}, {"FF", u.FF}, {"uSRAM", u.USRAM},
		{"LSRAM", u.LSRAM}, {"Math", u.Math},
	} {
		if c.v > max {
			max = c.v
			rep.Limiting = c.name
		}
	}
	return rep
}

// SmallestFitting returns the smallest catalog device that fits r.
func SmallestFitting(r Resources) (Device, error) {
	for _, d := range Catalog() {
		if r.FitsIn(d.Capacity) {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("fpga: no catalog device fits %v", r)
}
