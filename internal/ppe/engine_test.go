package ppe

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"flexsfp/internal/netsim"
	"flexsfp/internal/packet"
)

const clock156 = 156_250_000

func passProgram() *Program {
	return &Program{
		Name:        "pass",
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet},
		Stages:      1,
		Handler:     HandlerFunc(func(ctx *Ctx) Verdict { return VerdictPass }),
	}
}

func newTestEngine(t *testing.T, sim *netsim.Simulator, out func(Verdict, *Ctx)) *Engine {
	t.Helper()
	e := NewEngine(sim, clock156, 64, out)
	if err := e.SetProgram(passProgram()); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestProgramValidate(t *testing.T) {
	cases := []struct {
		name string
		prog Program
		want error
	}{
		{"no-name", Program{Stages: 1}, ErrNoName},
		{"no-stages", Program{Name: "x"}, ErrNoStages},
		{"bad-table", Program{Name: "x", Stages: 1,
			Tables: []TableSpec{{Name: "", KeyBits: 8, ValueBits: 8, Size: 1}}}, ErrBadTable},
		{"huge-ternary", Program{Name: "x", Stages: 1,
			Tables: []TableSpec{{Name: "t", Kind: TableTernary, KeyBits: 8, ValueBits: 8, Size: 100000}}}, ErrBadTable},
		{"bad-action", Program{Name: "x", Stages: 1,
			Actions: []ActionSpec{{Kind: ActionRewrite}}}, ErrBadAction},
		{"bad-register", Program{Name: "x", Stages: 1,
			Registers: []RegisterSpec{{Name: "r", Bits: 0}}}, ErrBadRegister},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.prog.Validate(); !errors.Is(err, c.want) {
				t.Errorf("err = %v, want %v", err, c.want)
			}
		})
	}
	ok := Program{
		Name: "good", Stages: 2,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeIPv4},
		Tables:      []TableSpec{{Name: "t", KeyBits: 32, ValueBits: 32, Size: 100}},
		Actions:     []ActionSpec{{Kind: ActionChecksum}, {Kind: ActionRewrite, Bits: 32}},
		Registers:   []RegisterSpec{{Name: "r", Bits: 64}},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestPipelineDepth(t *testing.T) {
	p := Program{
		Name:        "x",
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeIPv4},
		Stages:      2,
	}
	// 34 header bytes = 272 bits → 5 words at 64 b; +2×2 stages +1 = 10.
	if d := p.PipelineDepth(64); d != 10 {
		t.Errorf("depth(64) = %d, want 10", d)
	}
	// 512-bit datapath: 1 word + 4 + 1 = 6.
	if d := p.PipelineDepth(512); d != 6 {
		t.Errorf("depth(512) = %d, want 6", d)
	}
}

func TestEngineCapacityArithmetic(t *testing.T) {
	sim := netsim.New(1)
	e := newTestEngine(t, sim, nil)
	// 64-byte frame at 64-bit datapath: 8 words + 1 bubble = 9 cycles.
	if c := e.ServiceCycles(64); c != 9 {
		t.Errorf("ServiceCycles(64) = %d, want 9", c)
	}
	// Capacity ≈ 156.25e6/9 = 17.36 Mpps > 14.88 Mpps line rate: the
	// one-way NAT sustains 10G minimum-size traffic (§5.1).
	if pps := e.CapacityPPS(64); pps < 14.88e6 {
		t.Errorf("capacity %.2f Mpps below 10G line rate", pps/1e6)
	}
	// ...but below double line rate: a Two-Way-Core at 156.25 MHz cannot
	// absorb both directions (§4.1 "Processing Load").
	if pps := e.CapacityPPS(64); pps >= 2*14.88e6 {
		t.Errorf("capacity %.2f Mpps unexpectedly sustains two-way", pps/1e6)
	}
	// At 1518 B the capacity still covers line rate (812.7 kpps on wire).
	if pps := e.CapacityPPS(1518); pps < 812700 {
		t.Errorf("capacity at 1518B = %.0f pps, below line rate", pps)
	}
}

func TestEngineDoubleClockSustainsTwoWay(t *testing.T) {
	sim := netsim.New(1)
	e := NewEngine(sim, 2*clock156, 64, nil)
	if err := e.SetProgram(passProgram()); err != nil {
		t.Fatal(err)
	}
	if pps := e.CapacityPPS(64); pps < 2*14.88e6 {
		t.Errorf("312.5 MHz capacity %.2f Mpps below two-way line rate", pps/1e6)
	}
}

func TestEngineWiderDatapathSustains100G(t *testing.T) {
	// §5.3: scaling to 100G via a 512-bit datapath and higher clock.
	sim := netsim.New(1)
	e := NewEngine(sim, 400_000_000, 512, nil)
	if err := e.SetProgram(passProgram()); err != nil {
		t.Fatal(err)
	}
	// 100G line rate at 64B = 148.8 Mpps.
	if pps := e.CapacityPPS(64); pps < 148.8e6 {
		t.Errorf("512b@400MHz capacity %.1f Mpps below 100G line rate", pps/1e6)
	}
}

func TestEngineVerdictDelivery(t *testing.T) {
	sim := netsim.New(1)
	var verdicts []Verdict
	var at netsim.Time
	e := newTestEngine(t, sim, func(v Verdict, ctx *Ctx) {
		verdicts = append(verdicts, v)
		at = sim.Now()
	})
	frame := make([]byte, 64)
	if !e.Submit(frame, DirEdgeToOptical) {
		t.Fatal("Submit rejected")
	}
	sim.Run()
	if len(verdicts) != 1 || verdicts[0] != VerdictPass {
		t.Fatalf("verdicts = %v", verdicts)
	}
	if at != netsim.Time(e.Latency(64)) {
		t.Errorf("verdict at %v, want %v", at, e.Latency(64))
	}
	st := e.Stats()
	if st.In != 1 || st.Pass != 1 || st.InBytes != 64 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineVerdictCounting(t *testing.T) {
	sim := netsim.New(1)
	seq := []Verdict{VerdictDrop, VerdictTx, VerdictRedirect, VerdictToCPU, VerdictPass}
	i := 0
	e := NewEngine(sim, clock156, 64, nil)
	prog := passProgram()
	prog.Handler = HandlerFunc(func(ctx *Ctx) Verdict {
		v := seq[i%len(seq)]
		i++
		return v
	})
	if err := e.SetProgram(prog); err != nil {
		t.Fatal(err)
	}
	for range seq {
		e.Submit(make([]byte, 100), DirOpticalToEdge)
	}
	sim.Run()
	st := e.Stats()
	if st.Drop != 1 || st.Tx != 1 || st.Redirect != 1 || st.ToCPU != 1 || st.Pass != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineSaturationDropsExcess(t *testing.T) {
	// Offer 2× capacity of min-size frames with a bounded queue: about
	// half must be queue-dropped — the Two-Way-Core overload case.
	sim := netsim.New(1)
	delivered := 0
	e := NewEngine(sim, clock156, 64, func(v Verdict, ctx *Ctx) { delivered++ })
	if err := e.SetProgram(passProgram()); err != nil {
		t.Fatal(err)
	}
	e.QueueLimit = 16
	// Capacity is 17.36 Mpps; offer ~34.7 Mpps for 1 ms: interval 28.8 ns.
	n := 0
	sim.Every(29, func() bool {
		e.Submit(make([]byte, 64), DirEdgeToOptical)
		n++
		return n < 34000
	})
	sim.Run()
	st := e.Stats()
	accepted := float64(st.In)
	offered := float64(n)
	ratio := accepted / offered
	if math.Abs(ratio-0.5) > 0.05 {
		t.Errorf("accepted %.0f%% of offered at 2x overload, want ≈50%%", ratio*100)
	}
	if st.QueueDrop == 0 {
		t.Error("no queue drops at 2x overload")
	}
	if delivered != int(st.In) {
		t.Errorf("delivered %d != accepted %d", delivered, st.In)
	}
}

func TestEngineSustainsLineRateNoDrops(t *testing.T) {
	// Offer exactly 10G line rate (67.2 ns per min frame) for 1 ms with a
	// small queue: nothing may drop.
	sim := netsim.New(1)
	e := NewEngine(sim, clock156, 64, nil)
	if err := e.SetProgram(passProgram()); err != nil {
		t.Fatal(err)
	}
	e.QueueLimit = 4
	n := 0
	sim.Every(68, func() bool { // 67.2 ns rounded up: slightly under line rate
		e.Submit(make([]byte, 64), DirEdgeToOptical)
		n++
		return n < 14880
	})
	sim.Run()
	if st := e.Stats(); st.QueueDrop != 0 {
		t.Errorf("dropped %d frames at line rate", st.QueueDrop)
	}
}

func TestEngineLatencyOrdering(t *testing.T) {
	// Latency grows with frame size and includes pipeline depth.
	sim := netsim.New(1)
	e := newTestEngine(t, sim, nil)
	if e.Latency(64) >= e.Latency(1518) {
		t.Error("latency not monotone in size")
	}
	// 64B: 9 service + depth cycles at 6.4 ns.
	depth := passProgram().PipelineDepth(64)
	wantCycles := int64(9 + depth)
	want := netsim.Duration((wantCycles*6400 + 999) / 1000)
	if got := e.Latency(64); got != want {
		t.Errorf("Latency(64) = %v, want %v", got, want)
	}
}

func TestEngineUtilization(t *testing.T) {
	sim := netsim.New(1)
	e := newTestEngine(t, sim, nil)
	// One 64-byte frame = 9 cycles = 57.6 ns busy; run until 115.2 ns →
	// 50% utilization.
	e.Submit(make([]byte, 64), DirEdgeToOptical)
	sim.RunUntil(netsim.Time(115))
	u := e.Utilization()
	if math.Abs(u-0.5) > 0.02 {
		t.Errorf("utilization = %.3f, want ≈0.5", u)
	}
}

func TestEngineReprogram(t *testing.T) {
	sim := netsim.New(1)
	var got []Verdict
	e := NewEngine(sim, clock156, 64, func(v Verdict, ctx *Ctx) { got = append(got, v) })
	if err := e.SetProgram(passProgram()); err != nil {
		t.Fatal(err)
	}
	e.Submit(make([]byte, 64), DirEdgeToOptical)
	sim.Run()
	drop := passProgram()
	drop.Name = "drop-all"
	drop.Handler = HandlerFunc(func(ctx *Ctx) Verdict { return VerdictDrop })
	if err := e.SetProgram(drop); err != nil {
		t.Fatal(err)
	}
	e.Submit(make([]byte, 64), DirEdgeToOptical)
	sim.Run()
	if len(got) != 2 || got[0] != VerdictPass || got[1] != VerdictDrop {
		t.Errorf("verdicts = %v", got)
	}
}

func TestEngineRejectsHandlerlessProgram(t *testing.T) {
	sim := netsim.New(1)
	e := NewEngine(sim, clock156, 64, nil)
	p := passProgram()
	p.Handler = nil
	if err := e.SetProgram(p); err == nil {
		t.Error("handlerless program accepted")
	}
}

// Property: after the simulation drains, every accepted frame got exactly
// one verdict — In == Pass+Drop+Tx+Redirect+ToCPU — for any random offer
// pattern and queue limit.
func TestEngineVerdictConservationProperty(t *testing.T) {
	f := func(seed int64, limit uint8, burst uint8) bool {
		sim := netsim.New(seed)
		e := NewEngine(sim, clock156, 64, nil)
		prog := passProgram()
		i := 0
		prog.Handler = HandlerFunc(func(ctx *Ctx) Verdict {
			i++
			return Verdict(i % 5)
		})
		if err := e.SetProgram(prog); err != nil {
			return false
		}
		e.QueueLimit = int(limit % 32)
		n := int(burst)%200 + 1
		for k := 0; k < n; k++ {
			size := 64 + sim.Rand().Intn(1400)
			sim.Schedule(netsim.Duration(sim.Rand().Intn(10000)), func() {
				e.Submit(make([]byte, size), DirEdgeToOptical)
			})
		}
		sim.Run()
		st := e.Stats()
		verdicts := st.Pass + st.Drop + st.Tx + st.Redirect + st.ToCPU
		return st.In == verdicts && st.In+st.QueueDrop == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Regression: queue slots must be released when a frame's input occupancy
// ends, not when its verdict emerges a pipeline-depth later. A deep
// pipeline with the old verdict-time accounting overstated queue depth
// and queue-dropped bursty arrivals the input buffer actually had room
// for.
func TestEngineQueueReleasedAtOccupancyEnd(t *testing.T) {
	sim := netsim.New(1)
	deep := passProgram()
	deep.Stages = 20 // depth 43 cycles ≈ 275 ns — far beyond one service time
	e := NewEngine(sim, clock156, 64, nil)
	if err := e.SetProgram(deep); err != nil {
		t.Fatal(err)
	}
	e.QueueLimit = 3

	// t=0: burst of 4 frames. Frame 0 enters service immediately; frames
	// 1-3 queue (depth 3 = at the limit). Service time is 9 cycles =
	// 57.6 ns, so frame 1's occupancy ends at 115.2 ns, while its verdict
	// only emerges at ≈390 ns.
	for i := 0; i < 4; i++ {
		if !e.Submit(make([]byte, 64), DirEdgeToOptical) {
			t.Fatalf("burst frame %d dropped", i)
		}
	}
	// t=120 ns: frame 1 has fully entered the pipeline, so only frames
	// 2-3 still hold queue slots. The arrival must be accepted; the old
	// accounting still counted 3 queued (waiting for frame 1's verdict)
	// and dropped it.
	ok := false
	sim.ScheduleAt(120, func() {
		ok = e.Submit(make([]byte, 64), DirEdgeToOptical)
	})
	sim.Run()
	if !ok {
		t.Error("spurious QueueDrop: queue slot not released at occupancy end")
	}
	st := e.Stats()
	if st.QueueDrop != 0 {
		t.Errorf("QueueDrop = %d, want 0", st.QueueDrop)
	}
	if st.In != 5 {
		t.Errorf("In = %d, want 5", st.In)
	}
	verdicts := st.Pass + st.Drop + st.Tx + st.Redirect + st.ToCPU
	if verdicts != st.In {
		t.Errorf("verdicts %d != accepted %d", verdicts, st.In)
	}
}

// The queue must still fill and drop when arrivals genuinely outpace the
// input: same burst, but the probe arrives while all slots are held.
func TestEngineQueueStillDropsWhenFull(t *testing.T) {
	sim := netsim.New(1)
	e := newTestEngine(t, sim, nil)
	e.QueueLimit = 2
	for i := 0; i < 3; i++ {
		e.Submit(make([]byte, 64), DirEdgeToOptical)
	}
	// Immediately offer a fourth: frames 1-2 hold both slots until 115.2
	// and 172.8 ns; at t=0 the queue is full.
	if e.Submit(make([]byte, 64), DirEdgeToOptical) {
		t.Error("accepted into a full queue")
	}
	if st := e.Stats(); st.QueueDrop != 1 {
		t.Errorf("QueueDrop = %d, want 1", st.QueueDrop)
	}
	sim.Run()
}
