package apps

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/netip"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// LBMaxBackends bounds the backend table.
const LBMaxBackends = 256

// LBConfig configures the Katran-style L4 load balancer of §3: traffic to
// a virtual IP is steered to a backend chosen by a symmetric flow hash,
// "executed directly at the optical boundary".
type LBConfig struct {
	VIP      string      `json:"vip"`
	Backends []LBBackend `json:"backends"`
}

// LBBackend is one real server.
type LBBackend struct {
	IP  string `json:"ip"`
	MAC string `json:"mac"`
}

// LB counter indexes (bank "lb").
const (
	LBSteered = iota
	LBPassed
	lbCounters
)

type lbApp struct {
	prog      *ppe.Program
	state     *ppe.State
	backends  *ppe.Table // index(16b) → MAC(48b)+IP(32b)
	nBackends *ppe.Register
	ctr       *ppe.CounterBank
	vip       [4]byte
	haveVIP   bool
	v         packet.View
}

// NewLB builds a load-balancer instance.
func NewLB() *lbApp {
	a := &lbApp{state: ppe.NewState()}
	spec := ppe.TableSpec{Name: "backends", Kind: ppe.TableExact, KeyBits: 16, ValueBits: 80, Size: LBMaxBackends}
	a.backends = a.state.AddTable(spec)
	a.nBackends = a.state.AddRegister("n_backends")
	a.ctr = a.state.AddCounters("lb", lbCounters)
	a.prog = &ppe.Program{
		Name:        "lb",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeIPv4, packet.LayerTypeTCP},
		Tables:      []ppe.TableSpec{spec},
		Registers:   []ppe.RegisterSpec{{Name: "n_backends", Bits: 16}},
		Actions: []ppe.ActionSpec{
			{Kind: ppe.ActionHash, Bits: 64},
			{Kind: ppe.ActionRewrite, Bits: 80}, // dst MAC + dst IP
			{Kind: ppe.ActionChecksum},
			{Kind: ppe.ActionCounterBank, Count: lbCounters},
		},
		Stages:  3,
		Handler: ppe.HandlerFunc(a.handle),
	}
	return a
}

// Program implements core.App.
func (a *lbApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *lbApp) State() *ppe.State { return a.state }

// Configure implements core.App.
func (a *lbApp) Configure(config []byte) error {
	if len(config) == 0 {
		return fmt.Errorf("lb: config with VIP and backends required")
	}
	var cfg LBConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return fmt.Errorf("lb: %w", err)
	}
	vip, err := netip.ParseAddr(cfg.VIP)
	if err != nil || !vip.Is4() {
		return fmt.Errorf("lb: bad VIP %q", cfg.VIP)
	}
	a.vip = vip.As4()
	a.haveVIP = true
	if len(cfg.Backends) == 0 || len(cfg.Backends) > LBMaxBackends {
		return fmt.Errorf("lb: %d backends (want 1..%d)", len(cfg.Backends), LBMaxBackends)
	}
	for i, b := range cfg.Backends {
		ip, err := netip.ParseAddr(b.IP)
		if err != nil || !ip.Is4() {
			return fmt.Errorf("lb backend %d: bad IP %q", i, b.IP)
		}
		mac, err := packet.ParseMAC(b.MAC)
		if err != nil {
			return fmt.Errorf("lb backend %d: %w", i, err)
		}
		var key [2]byte
		binary.BigEndian.PutUint16(key[:], uint16(i))
		val := make([]byte, 10)
		copy(val[:6], mac[:])
		ip4 := ip.As4()
		copy(val[6:], ip4[:])
		if err := a.backends.Add(key[:], val); err != nil {
			return err
		}
	}
	a.nBackends.Store(uint64(len(cfg.Backends)))
	return nil
}

func (a *lbApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	if ctx.Dir != ppe.DirEdgeToOptical || !a.haveVIP {
		return ppe.VerdictPass
	}
	if !a.v.Parse(ctx.Data) || !a.v.IsIPv4 || a.v.L4Off == 0 {
		a.ctr.Inc(LBPassed, len(ctx.Data))
		return ppe.VerdictPass
	}
	v := &a.v
	if [4]byte(v.DstIPv4()) != a.vip {
		a.ctr.Inc(LBPassed, len(ctx.Data))
		return ppe.VerdictPass
	}
	n := a.nBackends.Load()
	if n == 0 {
		return ppe.VerdictDrop
	}
	// Symmetric flow hash keeps both directions of a connection on the
	// same backend (the packet.Flow.FastHash property).
	h := symmetricFlowHash(v)
	var key [2]byte
	binary.BigEndian.PutUint16(key[:], uint16(h%n))
	val, ok := a.backends.Lookup(key[:])
	if !ok {
		return ppe.VerdictDrop
	}
	// Rewrite dst MAC and dst IP toward the chosen backend.
	copy(ctx.Data[0:6], val[:6])
	v.RewriteIPv4Addr(v.L3Off+16, val[6:10])
	a.ctr.Inc(LBSteered, len(ctx.Data))
	return ppe.VerdictPass
}

// symmetricFlowHash mirrors packet.Flow.FastHash over the raw view.
func symmetricFlowHash(v *packet.View) uint64 {
	var sb, db [6]byte
	copy(sb[:4], v.SrcIPv4())
	binary.BigEndian.PutUint16(sb[4:], v.SrcPort)
	copy(db[:4], v.DstIPv4())
	binary.BigEndian.PutUint16(db[4:], v.DstPort)
	hs, hd := packet.FNV64(sb[:]), packet.FNV64(db[:])
	h := hs + hd
	h ^= hs * hd
	h = (h ^ uint64(v.Proto)) * 1099511628211
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
