package apps

import (
	"math/rand"
	"testing"

	"flexsfp/internal/core"
	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
	"flexsfp/internal/xdp"
)

// configuredApps instantiates every catalog app with a working config.
func configuredApps(t *testing.T) map[string]core.App {
	t.Helper()
	r := NewRegistry()
	configs := map[string]any{
		"nat":       NATConfig{Mappings: []NATMapping{{Internal: "10.0.0.1", External: "203.0.113.1"}}},
		"acl":       ACLConfig{Rules: []ACLRule{{DstPort: 22, Proto: 6, Deny: true, Priority: 1}}},
		"vlan":      VLANConfig{VLAN: 100},
		"tunnel":    tunnelConfig(TunnelGRE),
		"lb":        lbConfig(4),
		"telemetry": TelemetryConfig{Role: TelemetrySource, DeviceID: 1},
		"netflow":   NetFlowConfig{},
		"ratelimit": RateLimitConfig{DefaultRateBps: 1e9, DefaultBurstBits: 1e6},
		"dohblock":  DoHBlockConfig{BlockedDomains: []string{"x.example"}},
		"sanitize":  SanitizeConfig{VerifyChecksums: true},
		"monitor":   MonitorConfig{},
		"xdp": XDPConfig{Program: xdp.Program{Name: "pass-all", Insns: []xdp.Insn{
			xdp.MovImm(0, xdp.ActPass), xdp.Exit(),
		}}},
		"mesh": MeshConfig{Mode: TunnelVXLAN, LocalIP: "10.254.0.1",
			LocalMAC: "02:cc:cc:cc:cc:01", VNI: 4242},
	}
	out := map[string]core.App{}
	for _, name := range r.Names() {
		app, err := r.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Configure(mustJSON(t, configs[name])); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = app
	}
	return out
}

// Every app handler must survive arbitrary hostile bytes in both
// directions without panicking — the PPE sits on the raw wire.
func TestAllHandlersSurviveGarbage(t *testing.T) {
	appsByName := configuredApps(t)
	rng := rand.New(rand.NewSource(17))
	for name, app := range appsByName {
		h := app.Program().Handler
		for i := 0; i < 3000; i++ {
			n := rng.Intn(200)
			data := make([]byte, n)
			rng.Read(data)
			ctx := &ppe.Ctx{Data: data, Dir: ppe.Direction(i % 2), TimestampNs: uint64(i * 100)}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s panicked on garbage input: %v", name, r)
					}
				}()
				h.HandlePacket(ctx)
			}()
		}
	}
}

// Every app handler must survive every truncation of a valid frame.
func TestAllHandlersSurviveTruncation(t *testing.T) {
	appsByName := configuredApps(t)
	full := packet.MustBuild(packet.Spec{
		SrcMAC: macHost, DstMAC: macGW,
		VLANs: []uint16{7},
		SrcIP: ipInt, DstIP: ipSrv,
		Proto: packet.IPProtocolTCP, SrcPort: 1234, DstPort: 443,
		Payload: []byte("hello"),
	})
	for name, app := range appsByName {
		h := app.Program().Handler
		for n := 0; n <= len(full); n++ {
			data := append([]byte(nil), full[:n]...)
			ctx := &ppe.Ctx{Data: data, Dir: ppe.DirEdgeToOptical, TimestampNs: 1}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s panicked at truncation %d: %v", name, n, r)
					}
				}()
				h.HandlePacket(ctx)
			}()
		}
	}
}

// Truncations of a DNS query exercise the deep-parse (L7) paths.
func TestAllHandlersSurviveDNSTruncation(t *testing.T) {
	appsByName := configuredApps(t)
	full := dnsQueryFrame(t, "deep.x.example")
	for name, app := range appsByName {
		h := app.Program().Handler
		for n := 0; n <= len(full); n++ {
			data := append([]byte(nil), full[:n]...)
			ctx := &ppe.Ctx{Data: data, Dir: ppe.DirEdgeToOptical, TimestampNs: 1}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s panicked at DNS truncation %d: %v", name, n, r)
					}
				}()
				h.HandlePacket(ctx)
			}()
		}
	}
}

// Mutated (bit-flipped) valid frames exercise deeper parse paths.
func TestAllHandlersSurviveBitflips(t *testing.T) {
	appsByName := configuredApps(t)
	rng := rand.New(rand.NewSource(23))
	base := dnsQueryFrame(t, "x.example")
	for name, app := range appsByName {
		h := app.Program().Handler
		for i := 0; i < 2000; i++ {
			mut := append([]byte(nil), base...)
			for k := 0; k < 1+rng.Intn(5); k++ {
				mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
			}
			ctx := &ppe.Ctx{Data: mut, Dir: ppe.Direction(i % 2), TimestampNs: uint64(i)}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s panicked on bitflipped frame: %v", name, r)
					}
				}()
				h.HandlePacket(ctx)
			}()
		}
	}
}
