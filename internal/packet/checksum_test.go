package packet

import (
	"testing"
	"testing/quick"
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Example from RFC 1071 §3: data 00 01 f2 03 f4 f5 f6 f7 sums to
	// ddf2 (before complement), so the checksum is ^0xddf2 = 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Errorf("Checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd byte is padded with a zero byte on the right.
	if Checksum([]byte{0xab}) != Checksum([]byte{0xab, 0x00}) {
		t.Error("odd-length checksum disagrees with zero-padded even length")
	}
}

func TestChecksumEmpty(t *testing.T) {
	if got := Checksum(nil); got != 0xffff {
		t.Errorf("Checksum(nil) = %#04x, want 0xffff", got)
	}
}

// Property: embedding the complement checksum into any even-length message
// makes the whole message sum to zero (the receiver-side verification).
func TestChecksumSelfVerifyProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		msg := make([]byte, len(data)+2)
		copy(msg[2:], data)
		c := Checksum(msg)
		msg[0] = byte(c >> 8)
		msg[1] = byte(c)
		return Checksum(msg) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransportChecksumDetectsCorruption(t *testing.T) {
	seg := []byte{0, 53, 0, 99, 0, 12, 0, 0, 1, 2, 3, 4}
	s4, d4 := ip1.As4(), ip2.As4()
	c := TransportChecksum(seg, s4[:], d4[:], IPProtocolUDP)
	seg[6] = byte(c >> 8)
	seg[7] = byte(c)
	if TransportChecksum(seg, s4[:], d4[:], IPProtocolUDP) != 0 {
		t.Fatal("checksum does not self-verify")
	}
	seg[9] ^= 0x40
	if TransportChecksum(seg, s4[:], d4[:], IPProtocolUDP) == 0 {
		t.Error("corruption not detected")
	}
	// Pseudo-header participation: different src IP must break it.
	o4 := ip61.As16()
	_ = o4
	alt := [4]byte{10, 0, 0, 99}
	seg[9] ^= 0x40 // restore
	if TransportChecksum(seg, alt[:], d4[:], IPProtocolUDP) == 0 {
		t.Error("pseudo-header src IP not covered")
	}
}
