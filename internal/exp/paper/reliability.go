package paper

import (
	"fmt"

	"flexsfp/internal/exp"
	"flexsfp/internal/reliability"
)

// ---------------------------------------------------------------------------
// §5.3 reliability: VCSEL wear-out fleet simulation.

// ReliabilityResult wraps the fleet report.
type ReliabilityResult struct {
	Report reliability.FleetReport
	Config reliability.FleetConfig
}

// ReliabilityExperiment runs the default 10k-module, 10-year fleet.
func ReliabilityExperiment(seed int64) ReliabilityResult {
	cfg := reliability.DefaultFleet()
	return ReliabilityResult{
		Report: reliability.RunFleet(seed, reliability.DefaultVCSEL(), cfg),
		Config: cfg,
	}
}

// ReliabilityExperimentSharded runs the fleet on the parallel simulation
// core. RunFleetSharded's partition seeding matches RunFleet's exactly,
// so the result — and its JSON envelope — is bit-identical to the
// default path at any shard count.
func ReliabilityExperimentSharded(seed int64, shards int) ReliabilityResult {
	cfg := reliability.DefaultFleet()
	return ReliabilityResult{
		Report: reliability.RunFleetSharded(seed, reliability.DefaultVCSEL(), cfg, shards),
		Config: cfg,
	}
}

// Render formats the fleet report.
func (r ReliabilityResult) Render() string {
	rep := r.Report
	t := exp.NewTable("Metric", "Value")
	t.Add("Fleet size", rep.Modules)
	t.Add("Horizon (years)", r.Config.Years)
	t.Add("Laser failures in horizon", rep.Failures)
	t.Add("Detected early via DDM", fmt.Sprintf("%d (%.1f%%)", rep.DetectedEarly,
		100*float64(rep.DetectedEarly)/float64(maxInt(rep.Failures, 1))))
	t.Add("Sampled MTTF (years)", fmt.Sprintf("%.1f", rep.MTTFYears))
	t.Add("TTF p10/p90 (years)", fmt.Sprintf("%.1f / %.1f", rep.P10Years, rep.P90Years))
	t.Add("Std SFP module swaps ($)", fmt.Sprintf("%.0f", rep.StandardSwapCostUSD))
	t.Add("FlexSFP module swaps ($)", fmt.Sprintf("%.0f", rep.FlexModuleSwapCostUSD))
	t.Add("FlexSFP laser repairs ($)", fmt.Sprintf("%.0f", rep.FlexLaserRepairUSD))
	t.Add("Laser-repair saving", fmt.Sprintf("%.0f%%", rep.LaserRepairSavingFrac*100))
	return "Reliability (§5.3): VCSEL lognormal wear-out fleet simulation\n" + t.String()
}

// ReliabilityTrialsResult wraps the multi-seed fleet report.
type ReliabilityTrialsResult struct {
	Report reliability.FleetTrialsReport
	Config reliability.FleetConfig
}

// ReliabilityExperimentTrials runs the 10k-module fleet for trials seeds
// in parallel.
func ReliabilityExperimentTrials(rootSeed int64, trials, parallelism int) ReliabilityTrialsResult {
	cfg := reliability.DefaultFleet()
	return ReliabilityTrialsResult{
		Report: reliability.RunFleetTrials(rootSeed, trials, reliability.DefaultVCSEL(), cfg, parallelism),
		Config: cfg,
	}
}

// Render formats the multi-seed fleet report.
func (r ReliabilityTrialsResult) Render() string {
	rep := r.Report
	t := exp.NewTable("Metric", "Mean ± 95% CI")
	t.Add("Fleet size", rep.Modules)
	t.Add("Trials", rep.Trials)
	t.Add("Laser failures in horizon", fmtCI(rep.Failures, 1))
	t.Add("Detected early via DDM", fmtCI(rep.DetectedEarly, 1))
	t.Add("Sampled MTTF (years)", fmtCI(rep.MTTFYears, 2))
	t.Add("TTF p10 (years)", fmtCI(rep.P10Years, 2))
	t.Add("TTF p90 (years)", fmtCI(rep.P90Years, 2))
	t.Add("Std SFP module swaps ($)", fmtCI(rep.StandardSwapCostUSD, 0))
	t.Add("FlexSFP module swaps ($)", fmtCI(rep.FlexModuleSwapCostUSD, 0))
	t.Add("FlexSFP laser repairs ($)", fmtCI(rep.FlexLaserRepairUSD, 0))
	t.Add("Laser-repair saving", fmtCI(rep.LaserRepairSavingFrac, 3))
	return "Reliability (§5.3): VCSEL wear-out fleet, multi-seed\n" + t.String()
}

// runReliability is the registered entry point.
func runReliability(ctx exp.RunContext) (exp.Result, error) {
	env := exp.Envelope{Name: "reliability", Params: ctx.Params()}
	if ctx.EffectiveTrials() > 1 {
		r := ReliabilityExperimentTrials(ctx.Seed, ctx.Trials, ctx.Parallelism)
		env.Detail = r
		env.Metrics = []exp.Metric{
			exp.FromSummary("mttf_years", "yr", r.Report.MTTFYears),
			exp.FromSummary("failures", "", r.Report.Failures),
			exp.FromSummary("laser_repair_saving", "frac", r.Report.LaserRepairSavingFrac),
		}
		return exp.NewResult(env, r.Render), nil
	}
	var r ReliabilityResult
	if ctx.Shards > 1 {
		// Placement-only knob: same partition seeding, same report bits,
		// executed across ctx.Shards event heaps. (The multi-trial path
		// above already fans out across workers; Shards applies to the
		// single-seed fleet.)
		r = ReliabilityExperimentSharded(ctx.Seed, ctx.Shards)
	} else {
		r = ReliabilityExperiment(ctx.Seed)
	}
	env.Detail = r
	env.Metrics = []exp.Metric{
		exp.Scalar("mttf_years", "yr", r.Report.MTTFYears),
		exp.Scalar("failures", "", float64(r.Report.Failures)),
		exp.Scalar("laser_repair_saving", "frac", r.Report.LaserRepairSavingFrac),
	}
	return exp.NewResult(env, r.Render), nil
}
