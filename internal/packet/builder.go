package packet

import (
	"fmt"
	"net/netip"
)

// Spec describes a packet for the one-call builder used by traffic
// generators and tests. Zero values get sensible defaults.
type Spec struct {
	SrcMAC, DstMAC MAC
	VLANs          []uint16 // outer to inner; >1 entry produces QinQ
	SrcIP, DstIP   netip.Addr
	Proto          IPProtocol // TCP, UDP or ICMPv4; default UDP
	SrcPort        uint16
	DstPort        uint16
	TTL            uint8 // default 64
	SYN            bool  // TCP only
	Payload        []byte
	// PadTo pads the frame with zero payload bytes up to this total frame
	// length (before FCS); 0 disables. Useful for fixed-size workloads.
	PadTo int
}

// Build serializes the described packet with lengths and checksums fixed.
func Build(s Spec) ([]byte, error) {
	if !s.SrcIP.IsValid() || !s.DstIP.IsValid() {
		return nil, fmt.Errorf("%w: builder requires src and dst IPs", ErrBadHeader)
	}
	if s.TTL == 0 {
		s.TTL = 64
	}
	if s.Proto == 0 {
		s.Proto = IPProtocolUDP
	}

	var layers []SerializableLayer

	eth := &Ethernet{SrcMAC: s.SrcMAC, DstMAC: s.DstMAC}
	layers = append(layers, eth)

	// VLAN stack: the enclosing EtherType is QinQ for the outer tag of a
	// stacked pair, Dot1Q otherwise.
	prevType := &eth.EtherType
	for i, vid := range s.VLANs {
		if i == 0 && len(s.VLANs) > 1 {
			*prevType = EtherTypeQinQ
		} else {
			*prevType = EtherTypeDot1Q
		}
		tag := &Dot1Q{VLAN: vid}
		layers = append(layers, tag)
		prevType = &tag.EtherType
	}

	var ipProtoSlot *IPProtocol
	var src, dst netip.Addr = s.SrcIP, s.DstIP
	switch {
	case src.Is4() && dst.Is4():
		*prevType = EtherTypeIPv4
		ip := &IPv4{TTL: s.TTL, SrcIP: src, DstIP: dst}
		ipProtoSlot = &ip.Protocol
		layers = append(layers, ip)
	case src.Is6() && dst.Is6():
		*prevType = EtherTypeIPv6
		ip := &IPv6{HopLimit: s.TTL, SrcIP: src, DstIP: dst}
		ipProtoSlot = &ip.NextHeader
		layers = append(layers, ip)
	default:
		return nil, fmt.Errorf("%w: mixed address families", ErrBadHeader)
	}

	switch s.Proto {
	case IPProtocolUDP:
		*ipProtoSlot = IPProtocolUDP
		u := &UDP{SrcPort: s.SrcPort, DstPort: s.DstPort}
		if err := u.SetNetworkLayerForChecksum(src, dst); err != nil {
			return nil, err
		}
		layers = append(layers, u)
	case IPProtocolTCP:
		*ipProtoSlot = IPProtocolTCP
		t := &TCP{SrcPort: s.SrcPort, DstPort: s.DstPort, Window: 65535, SYN: s.SYN, ACK: !s.SYN}
		if err := t.SetNetworkLayerForChecksum(src, dst); err != nil {
			return nil, err
		}
		layers = append(layers, t)
	case IPProtocolICMPv4:
		*ipProtoSlot = IPProtocolICMPv4
		layers = append(layers, &ICMPv4{Type: ICMPv4TypeEchoRequest, ID: s.SrcPort, Seq: s.DstPort})
	default:
		return nil, fmt.Errorf("%w: unsupported builder protocol %d", ErrBadHeader, s.Proto)
	}

	payload := s.Payload
	if s.PadTo > 0 {
		overhead := 14 + 4*len(s.VLANs) + 8 // eth + tags + udp
		if src.Is4() {
			overhead += 20
		} else {
			overhead += 40
		}
		switch s.Proto {
		case IPProtocolTCP:
			overhead += 12 // tcp header is 20, udp assumed 8 above
		case IPProtocolICMPv4:
			// icmp header is 8, same as udp
		}
		if want := s.PadTo - overhead; want > len(payload) {
			padded := make([]byte, want)
			copy(padded, payload)
			payload = padded
		}
	}
	pl := Payload(payload)
	layers = append(layers, &pl)

	buf := NewSerializeBuffer()
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := SerializeLayers(buf, opts, layers...); err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// MustBuild is Build that panics on error; for tests.
func MustBuild(s Spec) []byte {
	b, err := Build(s)
	if err != nil {
		panic(err)
	}
	return b
}

// ARPSpec describes an ARP frame for the builder (the IP-based Spec
// cannot express ARP, which has no L3 header).
type ARPSpec struct {
	SrcMAC MAC
	// DstMAC defaults to broadcast for requests and SenderMAC-directed
	// unicast is the caller's choice for replies.
	DstMAC    MAC
	VLANs     []uint16
	Operation uint16 // ARPRequest / ARPReply; default ARPRequest
	SenderMAC MAC
	SenderIP  netip.Addr
	TargetMAC MAC
	TargetIP  netip.Addr
	// PadTo pads the frame with zero bytes to this total length.
	PadTo int
}

// BuildARP serializes an IPv4-over-Ethernet ARP frame.
func BuildARP(s ARPSpec) ([]byte, error) {
	if s.Operation == 0 {
		s.Operation = ARPRequest
	}
	if s.DstMAC == (MAC{}) {
		s.DstMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	}
	if s.SenderMAC == (MAC{}) {
		s.SenderMAC = s.SrcMAC
	}

	var layers []SerializableLayer
	eth := &Ethernet{SrcMAC: s.SrcMAC, DstMAC: s.DstMAC}
	layers = append(layers, eth)
	prevType := &eth.EtherType
	for i, vid := range s.VLANs {
		if i == 0 && len(s.VLANs) > 1 {
			*prevType = EtherTypeQinQ
		} else {
			*prevType = EtherTypeDot1Q
		}
		tag := &Dot1Q{VLAN: vid}
		layers = append(layers, tag)
		prevType = &tag.EtherType
	}
	*prevType = EtherTypeARP
	layers = append(layers, &ARP{
		Operation: s.Operation,
		SenderMAC: s.SenderMAC, SenderIP: s.SenderIP,
		TargetMAC: s.TargetMAC, TargetIP: s.TargetIP,
	})
	if pad := s.PadTo - (14 + 4*len(s.VLANs) + 28); pad > 0 {
		pl := Payload(make([]byte, pad))
		layers = append(layers, &pl)
	}

	buf := NewSerializeBuffer()
	if err := SerializeLayers(buf, SerializeOptions{}, layers...); err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// MustBuildARP is BuildARP that panics on error; for tests.
func MustBuildARP(s ARPSpec) []byte {
	b, err := BuildARP(s)
	if err != nil {
		panic(err)
	}
	return b
}

// Marshal renders the DHCP message standalone (UDP payload bytes), for
// feeding through Build as the payload of a port-67/68 frame.
func (d *DHCPv4) Marshal() ([]byte, error) {
	buf := NewSerializeBuffer()
	if err := d.SerializeTo(buf, SerializeOptions{}); err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}
