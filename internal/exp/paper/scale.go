package paper

import (
	"fmt"
	"math/rand"

	"flexsfp/internal/apps"
	"flexsfp/internal/build"
	"flexsfp/internal/core"
	"flexsfp/internal/exp"
	"flexsfp/internal/fpga"
	"flexsfp/internal/hls"
	"flexsfp/internal/runner"
)

// ---------------------------------------------------------------------------
// §5.3 scalability: datapath width × clock → achievable line rate.

// ScalePoint is one (width, clock) design point.
type ScalePoint struct {
	DatapathBits int
	ClockMHz     float64
	// CapacityGbps is the min-frame-limited sustained rate.
	CapacityGbps float64
	// Supports is the highest standard rate sustained (10/25/40/100G).
	Supports int
	// NAT design resources at this width, and whether it fits/clocks on
	// the smallest viable PolarFire part.
	Device   string
	Fits     bool
	TimingOK bool
	PeakW    float64
	Thermal  bool // inside the SFP+ 3 W envelope
}

// ScalabilityResult is the §5.3 sweep.
type ScalabilityResult struct {
	Points []ScalePoint
}

// ScalabilityExperiment sweeps the PPE design space: scaling by widening
// the datapath and/or raising the clock, with the resource, timing, and
// thermal consequences §5.3 describes. The sweep is a deterministic
// design-space evaluation — the seed is accepted for the uniform
// RunContext contract but never consumed. The grid points are
// independent design evaluations, so they fan out across workers and
// merge back in grid order.
func ScalabilityExperiment(seed int64) ScalabilityResult {
	r, _ := scaleSingle(exp.RunContext{Seed: seed})
	return r
}

func scaleSingle(ctx exp.RunContext) (ScalabilityResult, error) {
	prog := apps.NewNAT().Program()
	widths := []int{64, 128, 256, 512}
	clocks := []int64{build.BaseClockHz, 2 * build.BaseClockHz, 400_000_000}
	rates := []int{10, 25, 40, 50, 100}
	type gridCell struct {
		w int
		c int64
	}
	var grid []gridCell
	for _, w := range widths {
		for _, c := range clocks {
			grid = append(grid, gridCell{w, c})
		}
	}
	points, _ := runner.Map(len(grid), runner.Options{Parallelism: ctx.Parallelism},
		func(i int, _ *rand.Rand) (ScalePoint, error) {
			w, c := grid[i].w, grid[i].c
			// Min-frame capacity: ceil(64/wordBytes)+1 cycles per frame.
			wordBytes := w / 8
			cycles := float64((64+wordBytes-1)/wordBytes + 1)
			pps := float64(c) / cycles
			// Convert to the line rate this sustains (wire = frame+20B).
			capGbps := pps * (64 + 20) * 8 / 1e9
			supports := 0
			for _, rGbps := range rates {
				if capGbps >= float64(rGbps)*0.999 {
					supports = rGbps
				}
			}
			est := hls.EstimateProgram(prog, w).Add(hls.ShellResources(hls.TwoWayCore))
			dev, err := fpga.SmallestFitting(est)
			fits := err == nil
			timingOK := false
			devName := "-"
			if fits {
				devName = dev.Name
				util := dev.Fit(est).Utilization.Max() / 100
				timingOK = dev.ClockFeasible(float64(c)/1e6, util, w)
			}
			peak := core.PeakPowerW(c, w, hls.TwoWayCore)
			return ScalePoint{
				DatapathBits: w,
				ClockMHz:     float64(c) / 1e6,
				CapacityGbps: capGbps,
				Supports:     supports,
				Device:       devName,
				Fits:         fits,
				TimingOK:     timingOK,
				PeakW:        peak,
				Thermal:      peak <= core.ThermalEnvelopeW,
			}, nil
		})
	return ScalabilityResult{Points: points}, nil
}

// Render formats the sweep.
func (r ScalabilityResult) Render() string {
	t := exp.NewTable("Width", "Clock (MHz)", "Capacity (Gb/s)", "Sustains", "Device", "Timing", "Peak W", "SFP+ envelope")
	for _, p := range r.Points {
		sus := "-"
		if p.Supports > 0 {
			sus = fmt.Sprintf("%dG", p.Supports)
		}
		timing := "ok"
		if !p.TimingOK {
			timing = "FAIL"
		}
		th := "yes"
		if !p.Thermal {
			th = "NO"
		}
		t.Add(fmt.Sprintf("%db", p.DatapathBits), fmt.Sprintf("%.2f", p.ClockMHz),
			fmt.Sprintf("%.1f", p.CapacityGbps), sus, p.Device, timing,
			fmt.Sprintf("%.2f", p.PeakW), th)
	}
	return "Scalability sweep (§5.3): datapath width × clock\n" + t.String()
}

func runScale(ctx exp.RunContext) (exp.Result, error) {
	r, err := scaleSingle(ctx)
	if err != nil {
		return nil, err
	}
	fits, thermal := 0, 0
	for _, p := range r.Points {
		if p.Fits && p.TimingOK {
			fits++
		}
		if p.Thermal {
			thermal++
		}
	}
	env := exp.Envelope{
		Name: "scale", Params: ctx.Params(), Detail: r,
		Metrics: []exp.Metric{
			exp.Scalar("design_points", "", float64(len(r.Points))),
			exp.Scalar("fit_and_timing_ok", "", float64(fits)),
			exp.Scalar("within_sfp_envelope", "", float64(thermal)),
		},
	}
	return exp.NewResult(env, r.Render), nil
}
