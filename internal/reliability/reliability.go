// Package reliability makes the §5.3 "Failure Recovery" discussion
// quantitative: VCSEL lasers wear out ahead of the electronics, with
// lognormally-distributed time-to-failure and gradual optical power
// degradation as the dominant mode. The fleet simulation measures how
// often DDM monitoring catches degradation before the link dies, and
// compares replacement economics: whole-module swaps (the only option
// for cheap SFPs) versus component-level laser replacement, which the
// FlexSFP's higher unit price justifies.
package reliability

import (
	"math"
	"math/rand"
	"sort"
)

// VCSELModel is the lognormal wear-out model (per the OMEGA reliability
// assessment the paper cites).
type VCSELModel struct {
	// MedianYears is the median time to failure.
	MedianYears float64
	// Sigma is the lognormal shape parameter.
	Sigma float64
	// DegradationExponent shapes the power-loss ramp: degradation(t) =
	// (t/ttf)^k — slow early wear, then a steep final drop.
	DegradationExponent float64
}

// DefaultVCSEL returns parameters consistent with published VCSEL
// reliability studies: median TTF ≈ 12 years, σ ≈ 0.5.
func DefaultVCSEL() VCSELModel {
	return VCSELModel{MedianYears: 12, Sigma: 0.5, DegradationExponent: 4}
}

// SampleTTFYears draws one time-to-failure.
func (m VCSELModel) SampleTTFYears(rng *rand.Rand) float64 {
	return m.MedianYears * math.Exp(m.Sigma*rng.NormFloat64())
}

// DegradationAt returns the fractional optical power loss at age t for a
// part that fails (reaches full degradation) at ttf.
func (m VCSELModel) DegradationAt(t, ttf float64) float64 {
	if t <= 0 {
		return 0
	}
	if t >= ttf {
		return 1
	}
	return math.Pow(t/ttf, m.DegradationExponent)
}

// FleetConfig drives the fleet simulation.
type FleetConfig struct {
	Modules int
	Years   float64
	// InspectionIntervalYears is how often DDM telemetry is evaluated.
	InspectionIntervalYears float64
	// WarnDegradation is the degradation fraction at which DDM flags the
	// laser (≈2 dB power drop → 0.37).
	WarnDegradation float64
	// Replacement economics.
	StandardSFPUnitUSD  float64 // whole cheap module
	FlexSFPUnitUSD      float64 // whole FlexSFP
	LaserSubassemblyUSD float64 // component-level repair part
	RepairLaborUSD      float64 // per-intervention labor (same either way)
}

// DefaultFleet returns the paper-scale scenario: a metro operator with
// 10,000 ports over 10 years, quarterly telemetry sweeps.
func DefaultFleet() FleetConfig {
	return FleetConfig{
		Modules:                 10000,
		Years:                   10,
		InspectionIntervalYears: 0.25,
		WarnDegradation:         0.37,
		StandardSFPUnitUSD:      10,
		FlexSFPUnitUSD:          275,
		LaserSubassemblyUSD:     20,
		RepairLaborUSD:          30,
	}
}

// FleetReport summarizes a fleet run.
type FleetReport struct {
	Modules  int
	Failures int // lasers that reached end of life in the horizon
	// DetectedEarly is how many were flagged by a DDM sweep before the
	// link actually died (the §5.3 visibility advantage).
	DetectedEarly int
	// MTTFYears is the mean sampled TTF (including beyond-horizon parts).
	MTTFYears float64
	// P10 / P90 of sampled TTFs.
	P10Years, P90Years float64

	// Economics over the horizon (replacement costs only).
	StandardSwapCostUSD   float64 // cheap SFP: swap the module
	FlexModuleSwapCostUSD float64 // FlexSFP: swap the whole module
	FlexLaserRepairUSD    float64 // FlexSFP: replace the laser subassembly
	// LaserRepairSavingFrac is the fraction saved by component-level
	// repair versus whole-FlexSFP swaps.
	LaserRepairSavingFrac float64
}

// RunFleet simulates the fleet deterministically for a seed.
func RunFleet(seed int64, m VCSELModel, cfg FleetConfig) FleetReport {
	rng := rand.New(rand.NewSource(seed))
	ttfs := make([]float64, cfg.Modules)
	for i := range ttfs {
		ttfs[i] = m.SampleTTFYears(rng)
	}

	rep := FleetReport{Modules: cfg.Modules}
	var sum float64
	for _, ttf := range ttfs {
		sum += ttf
		if ttf <= cfg.Years {
			rep.Failures++
			// Was there an inspection between the warn point and death?
			warnAge := ttf * math.Pow(cfg.WarnDegradation, 1/m.DegradationExponent)
			firstSweepAfterWarn := math.Ceil(warnAge/cfg.InspectionIntervalYears) * cfg.InspectionIntervalYears
			if firstSweepAfterWarn < ttf {
				rep.DetectedEarly++
			}
		}
	}
	rep.MTTFYears = sum / float64(cfg.Modules)
	sorted := append([]float64(nil), ttfs...)
	sort.Float64s(sorted)
	rep.P10Years = sorted[cfg.Modules/10]
	rep.P90Years = sorted[cfg.Modules*9/10]

	f := float64(rep.Failures)
	rep.StandardSwapCostUSD = f * (cfg.StandardSFPUnitUSD + cfg.RepairLaborUSD)
	rep.FlexModuleSwapCostUSD = f * (cfg.FlexSFPUnitUSD + cfg.RepairLaborUSD)
	rep.FlexLaserRepairUSD = f * (cfg.LaserSubassemblyUSD + cfg.RepairLaborUSD)
	if rep.FlexModuleSwapCostUSD > 0 {
		rep.LaserRepairSavingFrac = 1 - rep.FlexLaserRepairUSD/rep.FlexModuleSwapCostUSD
	}
	return rep
}

// ComponentRepairViable captures the §5.3 argument: component-level
// replacement makes sense when the repair part + labor costs materially
// less than the module; for a $10 SFP it never does, for a $275 FlexSFP
// it does.
func ComponentRepairViable(moduleUSD, partUSD, laborUSD float64) bool {
	return partUSD+laborUSD < 0.5*moduleUSD
}
