package packet

// Native go-fuzz harnesses for the frame parsers. These complement the
// quick-based robustness tests in fuzz_test.go: the engine saves crashing
// inputs as a corpus and mutates from realistic seeds instead of pure
// noise. `make check` runs each target briefly; longer runs via
// `go test -fuzz=FuzzPacketDecode ./internal/packet`.

import "testing"

var fuzzEntryLayers = []LayerType{
	LayerTypeEthernet, LayerTypeIPv4, LayerTypeIPv6, LayerTypeTCP,
	LayerTypeUDP, LayerTypeICMPv4, LayerTypeGRE, LayerTypeVXLAN,
	LayerTypeDNS, LayerTypeINT, LayerTypeDot1Q, LayerTypeMPLS, LayerTypeARP,
}

func fuzzSeedFrames() [][]byte {
	return [][]byte{
		MustBuild(Spec{
			SrcMAC: macA, DstMAC: macB,
			SrcIP: ip1, DstIP: ip2,
			Proto: IPProtocolTCP, SrcPort: 80, DstPort: 443,
			Payload: []byte("payload-bytes"),
		}),
		MustBuild(Spec{
			SrcMAC: macA, DstMAC: macB,
			VLANs: []uint16{5, 100},
			SrcIP: ip1, DstIP: ip2,
			Proto: IPProtocolUDP, SrcPort: 53, DstPort: 53,
			Payload: []byte{0, 1, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 1, 'a', 0, 0, 1, 0, 1},
		}),
		MustBuild(Spec{
			SrcMAC: macA, DstMAC: macB,
			SrcIP: ip61, DstIP: ip62,
			Proto: IPProtocolUDP, SrcPort: 4789, DstPort: 4789,
			Payload: []byte("vxlan-ish"),
		}),
		{0, 1, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 1, 'a', 0, 0, 1, 0, 1}, // bare DNS message
	}
}

// FuzzPacketDecode: decoding arbitrary bytes from any entry layer must
// never panic — the PPE parses hostile wire data.
func FuzzPacketDecode(f *testing.F) {
	for _, frame := range fuzzSeedFrames() {
		for pick := range fuzzEntryLayers {
			f.Add(frame, uint8(pick))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, pick uint8) {
		entry := fuzzEntryLayers[int(pick)%len(fuzzEntryLayers)]
		pkt := NewPacket(data, entry)
		// Walking every decoded layer exercises the lazy paths; errors
		// are expected, panics are the bug.
		for _, l := range pkt.Layers() {
			_ = l.LayerType()
			_ = l.LayerPayload()
		}
		_ = pkt.ErrorLayer()
	})
}

// FuzzParserDecodeLayers covers the preallocated zero-alloc parser the
// PPE hot path uses, which reuses layer structs across frames.
func FuzzParserDecodeLayers(f *testing.F) {
	for _, frame := range fuzzSeedFrames() {
		f.Add(frame)
	}
	var (
		eth  Ethernet
		dot  Dot1Q
		ip4  IPv4
		ip6  IPv6
		tcp  TCP
		udp  UDP
		dns  DNS
		p    = NewParser(LayerTypeEthernet, &eth, &dot, &ip4, &ip6, &tcp, &udp, &dns)
		decd []LayerType
	)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Struct reuse across calls is the point: stale state from the
		// previous frame must never leak into a panic on the next.
		_ = p.DecodeLayers(data, &decd)
	})
}
