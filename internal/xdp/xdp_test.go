package xdp

import (
	"errors"
	"net/netip"
	"testing"

	"flexsfp/internal/fpga"
	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

var (
	xMacA = packet.MustMAC("02:00:00:00:00:01")
	xMacB = packet.MustMAC("02:00:00:00:00:02")
	xIP1  = netip.MustParseAddr("10.0.0.1")
	xIP2  = netip.MustParseAddr("10.0.0.2")
)

func udpTo(t *testing.T, dport uint16) []byte {
	t.Helper()
	return packet.MustBuild(packet.Spec{
		SrcMAC: xMacA, DstMAC: xMacB, SrcIP: xIP1, DstIP: xIP2,
		SrcPort: 1000, DstPort: dport, PadTo: 64,
	})
}

// dropUDPPort builds the classic XDP filter: drop UDP datagrams to a
// given destination port, pass everything else. Assumes untagged IPv4.
func dropUDPPort(port int64) *Program {
	return &Program{
		Name: "drop-udp-port",
		Insns: []Insn{
			// r1 = ethertype; must be IPv4.
			LdH(1, 0, 12),
			JNeImm(1, 0x0800, 7), // not IPv4 → pass (jump to the pass tail)
			// r2 = IP protocol; must be UDP.
			LdB(2, 0, 23),
			JNeImm(2, 17, 5), // not UDP → pass
			// r3 = IHL in bytes = (pkt[14] & 0xF) * 4.
			LdB(3, 0, 14),
			Insn{Op: OpAnd, Dst: 3, Imm: 0x0f, UseImm: true},
			Insn{Op: OpLsh, Dst: 3, Imm: 2, UseImm: true},
			// r4 = dst port at pkt[14 + IHL + 2].
			LdH(4, 3, 16), // 14 (eth) + 2 (dport offset) folded into Off
			JEqImm(4, port, 2),
			// pass tail:
			MovImm(0, ActPass),
			Exit(),
			// drop tail:
			MovImm(0, ActDrop),
			Exit(),
		},
	}
}

func TestVerifyAcceptsFilter(t *testing.T) {
	if err := dropUDPPort(53).Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRunDropsAndPasses(t *testing.T) {
	p := dropUDPPort(53)
	act, err := p.Run(udpTo(t, 53))
	if err != nil || act != ActDrop {
		t.Errorf("port 53: act=%d err=%v, want drop", act, err)
	}
	act, err = p.Run(udpTo(t, 80))
	if err != nil || act != ActPass {
		t.Errorf("port 80: act=%d err=%v, want pass", act, err)
	}
	// Non-IPv4 (ARP) passes through the first branch.
	arp := make([]byte, 64)
	arp[12], arp[13] = 0x08, 0x06
	act, err = p.Run(arp)
	if err != nil || act != ActPass {
		t.Errorf("arp: act=%d err=%v", act, err)
	}
}

func TestRunStoreRewritesPacket(t *testing.T) {
	// TTL-decrement codelet (checksum left to the hardware unit).
	p := &Program{
		Name: "ttl-dec",
		Insns: []Insn{
			LdB(1, 0, 22), // r1 = TTL
			Insn{Op: OpSub, Dst: 1, Imm: 1, UseImm: true}, // r1--
			Insn{Op: OpStB, Dst: 2, Off: 22, Src: 1},      // pkt[r2+22] = r1 (r2=0)
			MovImm(0, ActPass),
			Exit(),
		},
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	pkt := udpTo(t, 80)
	before := pkt[22]
	if act, err := p.Run(pkt); err != nil || act != ActPass {
		t.Fatal(act, err)
	}
	if pkt[22] != before-1 {
		t.Errorf("TTL %d → %d, want decrement", before, pkt[22])
	}
}

func TestVerifierRejections(t *testing.T) {
	cases := []struct {
		name string
		prog Program
		want error
	}{
		{"empty", Program{}, ErrEmpty},
		{"too-long", Program{Insns: make([]Insn, MaxInsns+1)}, ErrTooLong},
		{"bad-reg", Program{Insns: []Insn{MovReg(12, 0), Exit()}}, ErrBadReg},
		{"bad-op", Program{Insns: []Insn{{Op: opMax}, Exit()}}, ErrBadOp},
		{"back-jump", Program{Insns: []Insn{
			MovImm(0, 2), {Op: OpJmp, Off: -1}, Exit()}}, ErrBackJump},
		{"zero-jump", Program{Insns: []Insn{{Op: OpJmp, Off: 0}, Exit()}}, ErrBackJump},
		{"jump-range", Program{Insns: []Insn{{Op: OpJmp, Off: 10}, Exit()}}, ErrJumpRange},
		{"fall-off", Program{Insns: []Insn{MovImm(0, 2)}}, ErrNoExit},
		{"write-r10", Program{Insns: []Insn{MovImm(10, 1), Exit()}}, ErrWriteROReg},
		{"shift-range", Program{Insns: []Insn{
			{Op: OpLsh, Dst: 1, Imm: 99, UseImm: true}, Exit()}}, ErrShiftRange},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.prog.Verify(); !errors.Is(err, c.want) {
				t.Errorf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestBoundsCheckedAccess(t *testing.T) {
	p := &Program{Name: "oob", Insns: []Insn{
		LdW(1, 0, 1000), // way past a 64B frame
		MovImm(0, ActPass),
		Exit(),
	}}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	act, err := p.Run(make([]byte, 64))
	if !errors.Is(err, ErrOutOfBounds) || act != ActAborted {
		t.Errorf("act=%d err=%v, want aborted/out-of-bounds", act, err)
	}
	// Negative effective address via register.
	neg := &Program{Name: "neg", Insns: []Insn{
		MovImm(1, -5),
		Insn{Op: OpLdB, Dst: 2, Src: 1, Off: 0},
		MovImm(0, ActPass),
		Exit(),
	}}
	if err := neg.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := neg.Run(make([]byte, 64)); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("negative address: %v", err)
	}
}

func TestFrameLenRegister(t *testing.T) {
	p := &Program{Name: "len", Insns: []Insn{
		MovReg(0, RegFrameLen),
		Exit(),
	}}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	act, err := p.Run(make([]byte, 123))
	if err != nil || act != 123 {
		t.Errorf("act=%d err=%v", act, err)
	}
}

func TestALUOps(t *testing.T) {
	run := func(insns ...Insn) uint64 {
		p := &Program{Name: "alu", Insns: append(insns, Exit())}
		if err := p.Verify(); err != nil {
			t.Fatal(err)
		}
		act, err := p.Run(make([]byte, 64))
		if err != nil {
			t.Fatal(err)
		}
		return uint64(act)
	}
	if v := run(MovImm(0, 5), Insn{Op: OpAdd, Dst: 0, Imm: 3, UseImm: true}); v != 8 {
		t.Errorf("add = %d", v)
	}
	if v := run(MovImm(0, 5), Insn{Op: OpMul, Dst: 0, Imm: 3, UseImm: true}); v != 15 {
		t.Errorf("mul = %d", v)
	}
	if v := run(MovImm(0, 0xF0), Insn{Op: OpAnd, Dst: 0, Imm: 0x3C, UseImm: true}); v != 0x30 {
		t.Errorf("and = %d", v)
	}
	if v := run(MovImm(0, 1), Insn{Op: OpLsh, Dst: 0, Imm: 4, UseImm: true}); v != 16 {
		t.Errorf("lsh = %d", v)
	}
	if v := run(MovImm(0, 16), Insn{Op: OpRsh, Dst: 0, Imm: 4, UseImm: true}); v != 1 {
		t.Errorf("rsh = %d", v)
	}
	if v := run(MovImm(0, 6), Insn{Op: OpXor, Dst: 0, Imm: 3, UseImm: true}); v != 5 {
		t.Errorf("xor = %d", v)
	}
	if v := run(MovImm(0, 4), Insn{Op: OpOr, Dst: 0, Imm: 3, UseImm: true}); v != 7 {
		t.Errorf("or = %d", v)
	}
	if v := run(MovImm(0, 9), Insn{Op: OpSub, Dst: 0, Imm: 4, UseImm: true}); v != 5 {
		t.Errorf("sub = %d", v)
	}
	// Register-operand variant.
	if v := run(MovImm(1, 7), MovImm(0, 1), Insn{Op: OpAdd, Dst: 0, Src: 1}); v != 8 {
		t.Errorf("add reg = %d", v)
	}
	// JSet.
	if v := run(MovImm(1, 0b1010), MovImm(0, 1),
		Insn{Op: OpJSet, Dst: 1, Imm: 0b0010, UseImm: true, Off: 1},
		MovImm(0, 0)); v != 1 {
		t.Errorf("jset = %d", v)
	}
}

func TestOffloadToPPE(t *testing.T) {
	prog, err := Offload(dropUDPPort(53))
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "drop-udp-port" || prog.Stages < 1 {
		t.Errorf("prog = %+v", prog)
	}
	// Run through the handler with ppe contexts.
	ctx := &ppe.Ctx{Data: udpTo(t, 53), Dir: ppe.DirEdgeToOptical}
	if v := prog.Handler.HandlePacket(ctx); v != ppe.VerdictDrop {
		t.Errorf("verdict = %v, want drop", v)
	}
	ctx = &ppe.Ctx{Data: udpTo(t, 80), Dir: ppe.DirEdgeToOptical}
	if v := prog.Handler.HandlePacket(ctx); v != ppe.VerdictPass {
		t.Errorf("verdict = %v, want pass", v)
	}
	// Truncated garbage aborts → drop, never panics.
	ctx = &ppe.Ctx{Data: []byte{1, 2, 3}, Dir: ppe.DirEdgeToOptical}
	if v := prog.Handler.HandlePacket(ctx); v != ppe.VerdictDrop {
		t.Errorf("garbage verdict = %v, want drop (aborted)", v)
	}
}

func TestOffloadRejectsUnverifiable(t *testing.T) {
	if _, err := Offload(&Program{Name: "bad"}); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v", err)
	}
}

func TestActionMapping(t *testing.T) {
	mk := func(action int64) *ppe.Program {
		prog, err := Offload(&Program{Name: "act", Insns: Return(action)})
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	cases := map[int64]ppe.Verdict{
		ActPass:     ppe.VerdictPass,
		ActDrop:     ppe.VerdictDrop,
		ActTx:       ppe.VerdictTx,
		ActRedirect: ppe.VerdictRedirect,
		ActAborted:  ppe.VerdictDrop,
		99:          ppe.VerdictDrop,
	}
	for act, want := range cases {
		ctx := &ppe.Ctx{Data: make([]byte, 64)}
		if v := mk(act).Handler.HandlePacket(ctx); v != want {
			t.Errorf("action %d → %v, want %v", act, v, want)
		}
	}
}

func TestEstimateResourcesFitsMPF200T(t *testing.T) {
	small := EstimateResources(dropUDPPort(53))
	big := EstimateResources(&Program{Insns: make([]Insn, MaxInsns)})
	if small.LUT4 >= big.LUT4 || small.LSRAM >= big.LSRAM {
		t.Error("estimate not monotone in program size")
	}
	// Even the maximal program plus the shell must fit the prototype.
	total := big.Add(fpga.Resources{LUT4: 22333, FF: 14224, USRAM: 242, LSRAM: 4})
	if !total.FitsIn(fpga.MPF200T.Capacity) {
		t.Errorf("maximal XDP program does not fit: %v", total)
	}
}

func TestOpString(t *testing.T) {
	if OpMov.String() != "mov" || OpExit.String() != "exit" {
		t.Error("op names wrong")
	}
	if Op(200).String() != "op(200)" {
		t.Error("unknown op name wrong")
	}
}
