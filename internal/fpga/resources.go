// Package fpga models FPGA devices as resource vectors and provides the
// logic-element normalization and fit-check arithmetic behind the paper's
// Table 1 (NAT resource usage on the MPF200T) and Table 2 (literature
// designs normalized to 4-input logic elements).
//
// The model mirrors Microchip PolarFire accounting: logic is counted in
// 4-input LUTs and flip-flops; on-chip memory comes as uSRAM blocks
// (64×12 b each) and LSRAM blocks (20 kb each). Designs from other vendors
// are normalized to "LE" (4-input logic element) equivalents using the
// conversion factors the paper cites: 1 Xilinx LUT6 ≈ 1.6 LE, 1 Intel
// ALM ≈ 2 LE.
package fpga

import "fmt"

// Memory block geometry (PolarFire).
const (
	// USRAMBits is the capacity of one uSRAM block: 64 words × 12 bits.
	USRAMBits = 64 * 12
	// LSRAMBits is the capacity of one LSRAM block: 20 kb.
	LSRAMBits = 20 * 1024
)

// Resources is a vector of fabric resources, in PolarFire units.
type Resources struct {
	LUT4  int // 4-input LUTs
	FF    int // flip-flops
	USRAM int // 64×12 b blocks
	LSRAM int // 20 kb blocks
	Math  int // 18×18 math (DSP) blocks
}

// Add returns the component-wise sum r + s.
func (r Resources) Add(s Resources) Resources {
	return Resources{
		LUT4:  r.LUT4 + s.LUT4,
		FF:    r.FF + s.FF,
		USRAM: r.USRAM + s.USRAM,
		LSRAM: r.LSRAM + s.LSRAM,
		Math:  r.Math + s.Math,
	}
}

// Scale returns the vector multiplied by n (n copies of a component).
func (r Resources) Scale(n int) Resources {
	return Resources{
		LUT4:  r.LUT4 * n,
		FF:    r.FF * n,
		USRAM: r.USRAM * n,
		LSRAM: r.LSRAM * n,
		Math:  r.Math * n,
	}
}

// FitsIn reports whether every component of r is within s.
func (r Resources) FitsIn(s Resources) bool {
	return r.LUT4 <= s.LUT4 && r.FF <= s.FF &&
		r.USRAM <= s.USRAM && r.LSRAM <= s.LSRAM && r.Math <= s.Math
}

// MemoryBits returns the total on-chip memory the vector occupies, in bits.
func (r Resources) MemoryBits() int {
	return r.USRAM*USRAMBits + r.LSRAM*LSRAMBits
}

func (r Resources) String() string {
	return fmt.Sprintf("LUT4=%d FF=%d uSRAM=%d LSRAM=%d Math=%d",
		r.LUT4, r.FF, r.USRAM, r.LSRAM, r.Math)
}

// Utilization is the percentage of each resource class used on a device.
type Utilization struct {
	LUT4  float64
	FF    float64
	USRAM float64
	LSRAM float64
	Math  float64
}

// Max returns the highest utilization across resource classes.
func (u Utilization) Max() float64 {
	m := u.LUT4
	for _, v := range []float64{u.FF, u.USRAM, u.LSRAM, u.Math} {
		if v > m {
			m = v
		}
	}
	return m
}

func pct(used, avail int) float64 {
	if avail == 0 {
		if used == 0 {
			return 0
		}
		return 100
	}
	return 100 * float64(used) / float64(avail)
}

// USRAMBlocksFor returns the number of uSRAM blocks needed to hold bits.
func USRAMBlocksFor(bits int) int { return ceilDiv(bits, USRAMBits) }

// LSRAMBlocksFor returns the number of LSRAM blocks needed to hold bits.
func LSRAMBlocksFor(bits int) int { return ceilDiv(bits, LSRAMBits) }

func ceilDiv(a, b int) int {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
