// Sharded fleet controller: the daemon-side orchestration layer that
// operates 100k–1M cables from one process (ROADMAP item 1). Members are
// partitioned across W worker shards by a stable hash of their name;
// OTA pushes advance in lock-stepped waves where every shard runs its
// own canary gate (mgmt.CanaryConfig semantics) and a shard that trips
// its gate rolls back only its own members — bounding blast radius —
// while a global circuit breaker aborts the remaining waves when the
// cross-shard failure rate breaches its threshold. Telemetry aggregates
// hierarchically: each shard pre-folds its members' snapshots and the
// global merge touches only the W per-shard folds.
package daemon

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"flexsfp/internal/mgmt"
	"flexsfp/internal/telemetry"
)

// FleetMember is one managed module as the controller sees it. The
// production implementation is ClientMember (a mgmt.Client over TCP or
// an in-band transport); fleet-scale simulation uses SimMember.
//
// A member's methods are only ever called from its own shard's worker,
// so implementations need not be safe for concurrent use — but two
// members of different shards are driven concurrently.
type FleetMember interface {
	Name() string
	// Push streams a signed image into slot and reboots into it.
	Push(signed []byte, slot int, rebootAfter bool) error
	// Stats reads the member's health/identity counters.
	Stats() (mgmt.Stats, error)
	// Reboot boots the member into slot (the rollback path).
	Reboot(slot int) error
	// Telemetry reads the member's metric snapshot.
	Telemetry() (telemetry.Snapshot, error)
}

// ClientMember adapts a mgmt.Client to FleetMember.
type ClientMember struct {
	name string
	c    *mgmt.Client
}

// NewClientMember wraps a named management client.
func NewClientMember(name string, c *mgmt.Client) *ClientMember {
	return &ClientMember{name: name, c: c}
}

// Name implements FleetMember.
func (m *ClientMember) Name() string { return m.name }

// Client exposes the underlying management client.
func (m *ClientMember) Client() *mgmt.Client { return m.c }

// Push implements FleetMember via the resumable chunked OTA path.
func (m *ClientMember) Push(signed []byte, slot int, rebootAfter bool) error {
	return m.c.PushBitstream(signed, slot, rebootAfter)
}

// Stats implements FleetMember.
func (m *ClientMember) Stats() (mgmt.Stats, error) { return m.c.ReadStats() }

// Reboot implements FleetMember.
func (m *ClientMember) Reboot(slot int) error { return m.c.Reboot(slot) }

// Telemetry implements FleetMember.
func (m *ClientMember) Telemetry() (telemetry.Snapshot, error) { return m.c.Telemetry() }

// ShardFor maps a member name to its worker shard in [0, shards) with a
// stable FNV-1a/SplitMix64 hash: the same name lands on the same shard
// in every process, so per-shard canary history and rollback scope are
// stable across controller restarts.
func ShardFor(name string, shards int) int {
	if shards <= 1 {
		return 0
	}
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	// SplitMix64 finalizer scatters the FNV state so consecutive names
	// don't stripe.
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return int(h % uint64(shards))
}

// FleetConfig tunes a sharded rollout. The per-shard gate fields carry
// mgmt.CanaryConfig semantics: Canaries members are updated and
// health-checked before a shard fans out in waves, and a shard whose
// cumulative failed/attempted fraction exceeds MaxFailureFrac trips —
// rolling back only its own members.
type FleetConfig struct {
	// Shards is the worker shard count W (<=1 means a single shard).
	Shards int
	// TargetSlot is the flash slot every member reboots into.
	TargetSlot int
	// Canaries is each shard's canary count before its waves; default 1.
	Canaries int
	// WaveSize bounds each shard's per-wave batch after its canaries;
	// 0 = all remaining members in one wave.
	WaveSize int
	// MaxFailureFrac is the per-shard gate threshold; default 0.25
	// (mgmt.CanaryConfig's default).
	MaxFailureFrac float64
	// GlobalMaxFailureFrac is the circuit breaker: when the cross-shard
	// cumulative failure fraction exceeds it at a wave barrier, all
	// remaining waves are aborted fleet-wide. Default 0.5.
	GlobalMaxFailureFrac float64
	// Bake re-health-checks each wave's updated members at the wave
	// barrier before the next wave starts (the inter-wave health bake):
	// late failures count toward the shard's gate and are remediated.
	Bake bool
	// RemediationRetries bounds per-member rollback attempts for a
	// member found unhealthy on the target image; default 4.
	RemediationRetries int
	// HealthCheck validates a member after push+reboot (and during
	// bake). nil uses the default: Stats must report Running with
	// TargetSlot active.
	HealthCheck func(m FleetMember) error
	// WaveCost, when non-nil, prices one shard-wave after it completes
	// (e.g. max simulated push latency across the batch). Per-shard
	// costs accumulate over its waves; FleetReport.CostNs is the max
	// across shards — shards run in parallel, waves within one do not.
	WaveCost func(wave int, batch []FleetMember) uint64
}

func (cfg *FleetConfig) setDefaults() {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Canaries <= 0 {
		cfg.Canaries = 1
	}
	if cfg.MaxFailureFrac <= 0 {
		cfg.MaxFailureFrac = 0.25
	}
	if cfg.GlobalMaxFailureFrac <= 0 {
		cfg.GlobalMaxFailureFrac = 0.5
	}
	if cfg.RemediationRetries <= 0 {
		cfg.RemediationRetries = 4
	}
}

// MemberError is one member failure in a report.
type MemberError struct {
	Name string `json:"name"`
	Err  string `json:"err"`
}

// ShardReport is one worker shard's rollout outcome.
type ShardReport struct {
	Shard   int `json:"shard"`
	Members int `json:"members"`
	Waves   int `json:"waves"`

	Attempted int `json:"attempted"`
	Updated   int `json:"updated"`
	Failed    int `json:"failed"`

	// Tripped marks a breached per-shard gate; RolledBack counts the
	// members this shard rebooted into their previous slots as a result.
	Tripped      bool `json:"tripped,omitempty"`
	RolledBack   int  `json:"rolled_back,omitempty"`
	RollbackErrs int  `json:"rollback_errs,omitempty"`

	// BlastRadius counts members ever observed running the target image
	// unhealthy; Remediated counts those individually restored to their
	// previous slot; BadEnd counts those left that way (0 on success).
	BlastRadius int `json:"blast_radius,omitempty"`
	Remediated  int `json:"remediated,omitempty"`
	BadEnd      int `json:"bad_end,omitempty"`

	BakeFailures int `json:"bake_failures,omitempty"`

	// CostNs is the shard's accumulated WaveCost (0 without the hook).
	CostNs uint64 `json:"cost_ns,omitempty"`
}

// FleetReport is the outcome of a sharded rollout.
type FleetReport struct {
	Modules int `json:"modules"`
	Shards  int `json:"shards"`
	// Waves is the number of fleet-wide wave rounds executed (round 0 is
	// the canary round).
	Waves int `json:"waves"`

	Attempted int `json:"attempted"`
	Updated   int `json:"updated"`
	Failed    int `json:"failed"`

	TrippedShards int  `json:"tripped_shards,omitempty"`
	Aborted       bool `json:"aborted,omitempty"`

	BlastRadius  int `json:"blast_radius,omitempty"`
	Remediated   int `json:"remediated,omitempty"`
	RolledBack   int `json:"rolled_back,omitempty"`
	RollbackErrs int `json:"rollback_errs,omitempty"`
	BadEnd       int `json:"bad_end,omitempty"`
	BakeFailures int `json:"bake_failures,omitempty"`

	// CostNs is the rollout's modeled latency: max per-shard cost, since
	// shards advance their waves in parallel.
	CostNs uint64 `json:"cost_ns,omitempty"`

	PerShard []ShardReport `json:"per_shard,omitempty"`

	// Errors samples member failures (bounded, deterministic order).
	Errors []MemberError `json:"errors,omitempty"`
}

// maxReportErrors bounds the error sample in a FleetReport so a chaotic
// 1M-member rollout doesn't return a 1M-entry report.
const maxReportErrors = 32

// fleetShard is one worker shard's private state. All mutation happens
// on the shard's own worker goroutine; the controller reads it only at
// wave barriers.
type fleetShard struct {
	index   int
	members []FleetMember
	prev    map[string]int // member -> pre-rollout active slot

	next      int // index of the first member not yet pushed
	waves     int
	attempted int
	failed    int
	updated   []FleetMember // healthy on the target image (rollback set)
	lastWave  []FleetMember // the batch pushed this round (bake set)
	failures  []MemberError

	tripped      bool
	rolledBack   int
	rollbackErrs int
	blast        int
	remediated   int
	badEnd       int
	bakeFailures int
	costNs       uint64
}

// FleetController drives sharded rollouts and hierarchical telemetry
// aggregation over a fixed member set.
type FleetController struct {
	cfg    FleetConfig
	shards []*fleetShard
	health func(FleetMember) error
}

// NewFleetController partitions members over cfg.Shards worker shards by
// ShardFor of their (unique) names. Members are sorted by name first, so
// shard composition and wave order are independent of input order.
func NewFleetController(cfg FleetConfig, members []FleetMember) *FleetController {
	cfg.setDefaults()
	sorted := append([]FleetMember(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name() < sorted[j].Name() })
	c := &FleetController{cfg: cfg, shards: make([]*fleetShard, cfg.Shards)}
	for i := range c.shards {
		c.shards[i] = &fleetShard{index: i, prev: make(map[string]int)}
	}
	for _, m := range sorted {
		s := c.shards[ShardFor(m.Name(), cfg.Shards)]
		s.members = append(s.members, m)
	}
	c.health = cfg.HealthCheck
	if c.health == nil {
		c.health = func(m FleetMember) error {
			s, err := m.Stats()
			if err != nil {
				return err
			}
			if !s.Running {
				return errors.New("daemon: module not running after update")
			}
			if s.ActiveSlot != cfg.TargetSlot {
				return fmt.Errorf("daemon: module recovered on slot %d, not target %d",
					s.ActiveSlot, cfg.TargetSlot)
			}
			return nil
		}
	}
	return c
}

// Shards returns the effective worker shard count.
func (c *FleetController) Shards() int { return c.cfg.Shards }

// ShardMembers returns shard i's members in wave order (for tests and
// blast-radius accounting).
func (c *FleetController) ShardMembers(i int) []FleetMember {
	return append([]FleetMember(nil), c.shards[i].members...)
}

// parallelShards runs fn once per shard, concurrently. Each fn call owns
// its shard exclusively; the controller goroutine resumes only after
// every shard returns (the wave barrier).
func (c *FleetController) parallelShards(fn func(s *fleetShard)) {
	var wg sync.WaitGroup
	for _, s := range c.shards {
		wg.Add(1)
		go func(s *fleetShard) {
			defer wg.Done()
			fn(s)
		}(s)
	}
	wg.Wait()
}

// Rollout pushes the signed image across the fleet in lock-stepped
// waves. Round 0 updates every shard's canaries; each later round
// advances every still-active shard by WaveSize members. All gate and
// breaker decisions happen at the barrier between rounds, on complete
// per-round information — which is what makes the outcome a pure
// function of the members' behavior, independent of goroutine timing.
func (c *FleetController) Rollout(signed []byte) FleetReport {
	// Pre-flight: record every member's active slot for rollback.
	c.parallelShards(func(s *fleetShard) {
		for _, m := range s.members {
			if st, err := m.Stats(); err == nil {
				s.prev[m.Name()] = st.ActiveSlot
			}
		}
	})

	aborted := false
	rounds := 0
	for {
		active := false
		for _, s := range c.shards {
			if c.shardActive(s) {
				active = true
				break
			}
		}
		if !active || aborted {
			break
		}

		c.parallelShards(func(s *fleetShard) {
			if !c.shardActive(s) {
				return
			}
			c.runWave(s, signed, rounds)
		})
		rounds++

		// Barrier: per-shard canary gates, then the global breaker.
		var attempted, failed int
		for _, s := range c.shards {
			if !s.tripped && s.attempted > 0 &&
				float64(s.failed)/float64(s.attempted) > c.cfg.MaxFailureFrac {
				s.tripped = true
				c.rollbackShard(s)
			}
			attempted += s.attempted
			failed += s.failed
		}
		if attempted > 0 && float64(failed)/float64(attempted) > c.cfg.GlobalMaxFailureFrac {
			aborted = true
		}
	}

	rep := FleetReport{Shards: c.cfg.Shards, Waves: rounds, Aborted: aborted}
	for _, s := range c.shards {
		sr := ShardReport{
			Shard: s.index, Members: len(s.members), Waves: s.waves,
			Attempted: s.attempted, Updated: len(s.updated), Failed: s.failed,
			Tripped: s.tripped, RolledBack: s.rolledBack, RollbackErrs: s.rollbackErrs,
			BlastRadius: s.blast, Remediated: s.remediated, BadEnd: s.badEnd,
			BakeFailures: s.bakeFailures, CostNs: s.costNs,
		}
		if s.tripped {
			sr.Updated = 0 // rolled back; nothing remains on the target image
			rep.TrippedShards++
		}
		rep.Modules += sr.Members
		rep.Attempted += sr.Attempted
		rep.Updated += sr.Updated
		rep.Failed += sr.Failed
		rep.BlastRadius += sr.BlastRadius
		rep.Remediated += sr.Remediated
		rep.RolledBack += sr.RolledBack
		rep.RollbackErrs += sr.RollbackErrs
		rep.BadEnd += sr.BadEnd
		rep.BakeFailures += sr.BakeFailures
		if sr.CostNs > rep.CostNs {
			rep.CostNs = sr.CostNs
		}
		rep.PerShard = append(rep.PerShard, sr)
		for _, fe := range s.failures {
			if len(rep.Errors) < maxReportErrors {
				rep.Errors = append(rep.Errors, fe)
			}
		}
	}
	return rep
}

// shardActive reports whether shard s still has work: members left to
// push, or (with Bake on) a final pushed wave awaiting its health bake.
func (c *FleetController) shardActive(s *fleetShard) bool {
	if s.tripped {
		return false
	}
	return s.next < len(s.members) || (c.cfg.Bake && len(s.lastWave) > 0)
}

// runWave pushes one batch on shard s: its canaries in round 0, then
// WaveSize members per later round. Runs on the shard's worker.
func (c *FleetController) runWave(s *fleetShard, signed []byte, round int) {
	// Inter-wave health bake: before advancing, re-check the members the
	// previous wave updated. Late failures (a wedge that only shows up
	// after bake time) move from updated to failed and are remediated,
	// and they count toward the shard gate like any other failure.
	if c.cfg.Bake && len(s.lastWave) > 0 {
		for _, m := range s.lastWave {
			if !memberIn(s.updated, m) {
				continue
			}
			if err := c.health(m); err != nil {
				s.bakeFailures++
				s.failed++
				s.updated = memberOut(s.updated, m)
				s.fail(m, fmt.Errorf("bake: %w", err))
				c.remediate(s, m)
			}
		}
		if s.attempted > 0 && float64(s.failed)/float64(s.attempted) > c.cfg.MaxFailureFrac {
			// The bake alone tripped the gate; skip this round's pushes.
			// (The barrier will observe tripped=false failure counts and
			// perform the shard rollback.)
			s.lastWave = nil
			return
		}
	}
	if s.next >= len(s.members) {
		// Nothing left to push; this round existed only for the bake.
		s.lastWave = nil
		return
	}

	n := c.cfg.WaveSize
	if round == 0 {
		n = c.cfg.Canaries
	}
	if n <= 0 || n > len(s.members)-s.next {
		n = len(s.members) - s.next
	}
	batch := s.members[s.next : s.next+n]
	s.next += n
	s.waves++

	for _, m := range batch {
		s.attempted++
		if err := m.Push(signed, c.cfg.TargetSlot, true); err != nil {
			// A dropped connection may still have landed the push and
			// rebooted the member into the target (mgmt's ConnDrop
			// ambiguity): verify rather than assume. Healthy on target
			// counts as updated; anything else is a failure, and a
			// member stuck unhealthy on the target is restored.
			if herr := c.health(m); herr == nil {
				s.updated = append(s.updated, m)
				continue
			}
			s.failed++
			s.fail(m, err)
			c.remediate(s, m)
			continue
		}
		if err := c.health(m); err != nil {
			s.failed++
			s.fail(m, err)
			c.remediate(s, m)
			continue
		}
		s.updated = append(s.updated, m)
	}
	s.lastWave = batch
	if c.cfg.WaveCost != nil {
		s.costNs += c.cfg.WaveCost(round, batch)
	}
}

// fail records a bounded, deterministic failure sample.
func (s *fleetShard) fail(m FleetMember, err error) {
	if len(s.failures) < maxReportErrors {
		s.failures = append(s.failures, MemberError{Name: m.Name(), Err: err.Error()})
	}
}

// remediate restores one unhealthy member found running the target image
// (the "ever on a bad image" case — it counts toward blast radius) to
// its pre-rollout slot, retrying the reboot until health agrees. Members
// that never activated the target (push failed, or the boot FSM already
// fell back) need nothing.
func (c *FleetController) remediate(s *fleetShard, m FleetMember) {
	st, err := m.Stats()
	if err != nil || st.ActiveSlot != c.cfg.TargetSlot {
		return
	}
	s.blast++
	prev, ok := s.prev[m.Name()]
	if !ok {
		s.badEnd++
		return
	}
	for i := 0; i < c.cfg.RemediationRetries; i++ {
		m.Reboot(prev) // a dropped response may still have rebooted it
		if st, err := m.Stats(); err == nil && st.Running && st.ActiveSlot != c.cfg.TargetSlot {
			s.remediated++
			return
		}
	}
	s.badEnd++
}

// rollbackShard reverts every member this shard updated (plus any failed
// member still on the target image) to its previous slot. Runs at the
// barrier, but only touches shard-local state and members — a tripped
// shard's rollback never reaches another shard's members, which is the
// blast-radius bound.
func (c *FleetController) rollbackShard(s *fleetShard) {
	targets := append([]FleetMember(nil), s.updated...)
	for _, m := range targets {
		prev, ok := s.prev[m.Name()]
		if !ok {
			s.rollbackErrs++
			continue
		}
		rolled := false
		for i := 0; i < c.cfg.RemediationRetries; i++ {
			m.Reboot(prev)
			if st, err := m.Stats(); err == nil && st.Running && st.ActiveSlot == prev {
				rolled = true
				break
			}
		}
		if rolled {
			s.rolledBack++
		} else {
			s.rollbackErrs++
		}
	}
	s.lastWave = nil
}

// FoldStats summarizes a hierarchical aggregation pass.
type FoldStats struct {
	// MemberSnaps is how many per-member snapshots the shard layer
	// folded; ShardFolds is how many folds the global merge touched —
	// always the shard count, never the member count.
	MemberSnaps int `json:"member_snaps"`
	ShardFolds  int `json:"shard_folds"`
	// SnapErrs counts members whose Telemetry read failed.
	SnapErrs int `json:"snap_errs,omitempty"`
}

// AggregateTelemetry folds the fleet's telemetry hierarchically: every
// shard worker folds its own members' snapshots into a per-shard
// telemetry.Fold in parallel, then the global merge combines the W
// folds. The global layer receives only folds — by construction it
// cannot touch per-module state, so its cost scales with W and the
// metric-name cardinality, not with fleet size. Not safe to call
// concurrently with Rollout (both drive the members).
func (c *FleetController) AggregateTelemetry() (telemetry.Snapshot, FoldStats) {
	folds := make([]*telemetry.Fold, len(c.shards))
	errs := make([]int, len(c.shards))
	c.parallelShards(func(s *fleetShard) {
		f := telemetry.NewFold()
		for _, m := range s.members {
			snap, err := m.Telemetry()
			if err != nil {
				errs[s.index]++
				continue
			}
			f.Add(snap)
		}
		folds[s.index] = f
	})

	global := telemetry.NewFold()
	for _, f := range folds {
		global.Merge(f)
	}
	snaps, merges := global.Folded()
	stats := FoldStats{MemberSnaps: snaps, ShardFolds: merges}
	for _, e := range errs {
		stats.SnapErrs += e
	}
	return global.Snapshot(), stats
}

func memberIn(ms []FleetMember, m FleetMember) bool {
	for _, x := range ms {
		if x == m {
			return true
		}
	}
	return false
}

func memberOut(ms []FleetMember, m FleetMember) []FleetMember {
	for i, x := range ms {
		if x == m {
			return append(ms[:i], ms[i+1:]...)
		}
	}
	return ms
}
