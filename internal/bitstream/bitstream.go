// Package bitstream defines the loadable design artifact a FlexSFP boots:
// a header describing the application and its operating point, an opaque
// pipeline-configuration payload produced by the HLS toolchain, a CRC-32
// integrity trailer, and an HMAC-SHA256 authentication wrapper used for
// over-the-network reprogramming (§4.2: "the control plane authenticates
// reconfiguration packets whose payload carries a new bitstream").
package bitstream

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Format constants.
var magic = [4]byte{'F', 'S', 'F', 'P'}

// FormatVersion is the current header format version.
const FormatVersion = 1

// Flag bits.
const (
	// FlagGolden marks the factory fallback image; the boot FSM refuses
	// to overwrite the slot holding it.
	FlagGolden uint16 = 1 << 0
)

// CRCSize is the length of the CRC-32 integrity trailer at the end of an
// encoded bitstream (exported for fault injectors that target it).
const CRCSize = 4

const (
	headerSize = 4 + 2 + 2 + 32 + 4 + 16 + 4 + 2 + 2 + 4 // 72 bytes
	crcSize    = CRCSize
	macSize    = sha256.Size
	maxNameLen = 32
	maxDevLen  = 16
	maxPayload = 8 << 20 // fits any slot
	minEncoded = headerSize + crcSize
)

// Errors returned by decoding and verification.
var (
	ErrBadMagic     = errors.New("bitstream: bad magic")
	ErrBadVersion   = errors.New("bitstream: unsupported format version")
	ErrBadCRC       = errors.New("bitstream: CRC mismatch")
	ErrTooShort     = errors.New("bitstream: data too short")
	ErrBadMAC       = errors.New("bitstream: authentication failed")
	ErrTooLarge     = errors.New("bitstream: payload too large")
	ErrBadField     = errors.New("bitstream: invalid field")
	ErrStaleVersion = errors.New("bitstream: stale application version")
)

// Bitstream is a design image.
type Bitstream struct {
	AppName      string
	AppVersion   uint32
	Device       string // target FPGA, e.g. "MPF200T"
	ClockKHz     uint32 // PPE clock (156250 for the 10G NAT design)
	DatapathBits uint16
	Flags        uint16
	Payload      []byte // opaque pipeline configuration
}

// Golden reports whether the image is the factory fallback.
func (b *Bitstream) Golden() bool { return b.Flags&FlagGolden != 0 }

// VerifyFreshness rejects downgrade attacks: an image whose AppVersion is
// below current (the version already running for the same application)
// fails with ErrStaleVersion. Equal versions are accepted (re-push of the
// running image is idempotent).
func (b *Bitstream) VerifyFreshness(current uint32) error {
	if b.AppVersion < current {
		return fmt.Errorf("%w: have v%d, offered v%d", ErrStaleVersion, current, b.AppVersion)
	}
	return nil
}

// Size returns the encoded size in bytes.
func (b *Bitstream) Size() int { return headerSize + len(b.Payload) + crcSize }

// Encode serializes the bitstream with its CRC-32 trailer.
func (b *Bitstream) Encode() ([]byte, error) {
	if len(b.AppName) > maxNameLen {
		return nil, fmt.Errorf("%w: app name %q too long", ErrBadField, b.AppName)
	}
	if len(b.Device) > maxDevLen {
		return nil, fmt.Errorf("%w: device %q too long", ErrBadField, b.Device)
	}
	if len(b.Payload) > maxPayload {
		return nil, ErrTooLarge
	}
	out := make([]byte, headerSize+len(b.Payload)+crcSize)
	copy(out[0:4], magic[:])
	binary.BigEndian.PutUint16(out[4:6], FormatVersion)
	binary.BigEndian.PutUint16(out[6:8], b.Flags)
	copy(out[8:40], b.AppName)
	binary.BigEndian.PutUint32(out[40:44], b.AppVersion)
	copy(out[44:60], b.Device)
	binary.BigEndian.PutUint32(out[60:64], b.ClockKHz)
	binary.BigEndian.PutUint16(out[64:66], b.DatapathBits)
	// out[66:68] reserved.
	binary.BigEndian.PutUint32(out[68:72], uint32(len(b.Payload)))
	copy(out[headerSize:], b.Payload)
	crc := crc32.ChecksumIEEE(out[:headerSize+len(b.Payload)])
	binary.BigEndian.PutUint32(out[headerSize+len(b.Payload):], crc)
	return out, nil
}

// HeaderSize is the length of the fixed encoded header.
const HeaderSize = headerSize

// EncodedLen inspects an encoded header prefix and returns the total
// encoded length (header + payload + CRC trailer). ok is false when the
// prefix cannot be a valid header (too short, bad magic or version, or an
// oversized payload length) — exactly the cases where Decode would fail
// before ever looking at the payload. It lets storage layers read just
// the occupied bytes of a slot instead of the whole region.
func EncodedLen(header []byte) (total int, ok bool) {
	if len(header) < headerSize {
		return 0, false
	}
	if !bytes.Equal(header[0:4], magic[:]) {
		return 0, false
	}
	if binary.BigEndian.Uint16(header[4:6]) != FormatVersion {
		return 0, false
	}
	plen := int(binary.BigEndian.Uint32(header[68:72]))
	if plen > maxPayload {
		return 0, false
	}
	return headerSize + plen + crcSize, true
}

// Decode parses and integrity-checks an encoded bitstream.
func Decode(data []byte) (*Bitstream, error) {
	if len(data) < minEncoded {
		return nil, ErrTooShort
	}
	if !bytes.Equal(data[0:4], magic[:]) {
		return nil, ErrBadMagic
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != FormatVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	plen := int(binary.BigEndian.Uint32(data[68:72]))
	if plen > maxPayload {
		return nil, ErrTooLarge
	}
	total := headerSize + plen + crcSize
	if len(data) < total {
		return nil, ErrTooShort
	}
	body := data[:headerSize+plen]
	wantCRC := binary.BigEndian.Uint32(data[headerSize+plen : total])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, ErrBadCRC
	}
	b := &Bitstream{
		Flags:        binary.BigEndian.Uint16(data[6:8]),
		AppName:      cString(data[8:40]),
		AppVersion:   binary.BigEndian.Uint32(data[40:44]),
		Device:       cString(data[44:60]),
		ClockKHz:     binary.BigEndian.Uint32(data[60:64]),
		DatapathBits: binary.BigEndian.Uint16(data[64:66]),
		Payload:      append([]byte(nil), data[headerSize:headerSize+plen]...),
	}
	return b, nil
}

func cString(b []byte) string {
	if i := bytes.IndexByte(b, 0); i >= 0 {
		b = b[:i]
	}
	return string(b)
}

// Sign wraps encoded bitstream bytes with an HMAC-SHA256 tag computed
// under key. The result is what travels over the network.
func Sign(encoded, key []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(encoded)
	return append(append([]byte(nil), encoded...), m.Sum(nil)...)
}

// Verify checks the HMAC tag of a signed blob and returns the inner
// encoded bitstream bytes.
func Verify(signed, key []byte) ([]byte, error) {
	if len(signed) < macSize {
		return nil, ErrTooShort
	}
	body := signed[:len(signed)-macSize]
	tag := signed[len(signed)-macSize:]
	m := hmac.New(sha256.New, key)
	m.Write(body)
	if !hmac.Equal(tag, m.Sum(nil)) {
		return nil, ErrBadMAC
	}
	return body, nil
}
