package mgmt

import "fmt"

// Overlay rendezvous wire types. The rendezvous point (internal/overlay)
// speaks the same TLV envelope as the cable agents, so the PR 2 client —
// retries, deadlines, jittered backoff — is reused unchanged for the
// control plane of the mesh.

// OverlayPrefix is one announced IPv4 prefix. Priority orders ownership
// among announcers of the same prefix: 0 is the primary, higher values
// are backups that take over when the primary is withdrawn.
type OverlayPrefix struct {
	IP       [4]byte
	Len      uint8
	Priority uint8
}

func (p OverlayPrefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d", p.IP[0], p.IP[1], p.IP[2], p.IP[3], p.Len)
}

// OverlayEndpoint is a cable's registration: its underlay tunnel
// endpoint (IP/MAC), receive-side encap parameters (what peers use when
// encapsulating toward it), and the prefixes it announces.
type OverlayEndpoint struct {
	Name string
	// ID is the stable peer id assigned by the rendezvous on first
	// registration of a name and never reused — routes reference it, and
	// controllers use it directly as the mesh_peers table key, so a
	// withdrawal never renumbers surviving peers (a slice index would).
	// Ignored in registration requests.
	ID       uint16
	IP       [4]byte
	MAC      [6]byte
	Mode     uint8 // apps.MeshModeGRE / apps.MeshModeVXLAN
	VNI      uint32
	GREKey   uint32
	Prefixes []OverlayPrefix
}

// OverlayRoute assigns a prefix to its current owner's stable peer ID.
type OverlayRoute struct {
	Prefix OverlayPrefix
	Peer   uint16
}

// OverlayTable is the MsgOverlayPeers response: the full mesh state at
// one generation. Generation increases on every register/withdraw, so a
// controller can cheaply detect staleness.
type OverlayTable struct {
	Generation uint64
	Peers      []OverlayEndpoint
	Routes     []OverlayRoute
}

// overlayMaxList bounds decoded list lengths (peers, routes, prefixes)
// so hostile bodies cannot force huge allocations.
const overlayMaxList = 4096

func writeOverlayPrefix(w *bodyWriter, p OverlayPrefix) {
	w.b = append(w.b, p.IP[:]...)
	w.u8(p.Len)
	w.u8(p.Priority)
}

func readOverlayPrefix(r *bodyReader) OverlayPrefix {
	var p OverlayPrefix
	for i := range p.IP {
		p.IP[i] = r.u8()
	}
	p.Len = r.u8()
	p.Priority = r.u8()
	if p.Len > 32 {
		r.fail()
	}
	return p
}

func writeOverlayEndpoint(w *bodyWriter, e OverlayEndpoint) {
	w.str(e.Name)
	w.u16(e.ID)
	w.b = append(w.b, e.IP[:]...)
	w.b = append(w.b, e.MAC[:]...)
	w.u8(e.Mode)
	w.u32(e.VNI)
	w.u32(e.GREKey)
	w.u16(uint16(len(e.Prefixes)))
	for _, p := range e.Prefixes {
		writeOverlayPrefix(w, p)
	}
}

func readOverlayEndpoint(r *bodyReader) OverlayEndpoint {
	var e OverlayEndpoint
	e.Name = r.str()
	e.ID = r.u16()
	for i := range e.IP {
		e.IP[i] = r.u8()
	}
	for i := range e.MAC {
		e.MAC[i] = r.u8()
	}
	e.Mode = r.u8()
	e.VNI = r.u32()
	e.GREKey = r.u32()
	n := int(r.u16())
	if n > overlayMaxList {
		r.fail()
		return e
	}
	for i := 0; i < n && r.err == nil; i++ {
		e.Prefixes = append(e.Prefixes, readOverlayPrefix(r))
	}
	return e
}

// EncodeOverlayRegister builds a MsgOverlayRegister request body.
func EncodeOverlayRegister(e OverlayEndpoint) []byte {
	var w bodyWriter
	writeOverlayEndpoint(&w, e)
	return w.b
}

// DecodeOverlayRegister parses a MsgOverlayRegister request body.
func DecodeOverlayRegister(body []byte) (OverlayEndpoint, error) {
	r := bodyReader{b: body}
	e := readOverlayEndpoint(&r)
	if r.err == nil && len(r.b) != 0 {
		r.err = ErrBadBody
	}
	if r.err == nil && e.Name == "" {
		r.err = ErrBadBody
	}
	return e, r.err
}

// EncodeOverlayGeneration builds the u64 generation body used by the
// register/withdraw replies.
func EncodeOverlayGeneration(gen uint64) []byte {
	var w bodyWriter
	w.u64(gen)
	return w.b
}

// DecodeOverlayGeneration parses a generation reply body.
func DecodeOverlayGeneration(body []byte) (uint64, error) {
	r := bodyReader{b: body}
	gen := r.u64()
	return gen, r.err
}

// EncodeOverlayWithdraw builds a MsgOverlayWithdraw request body.
func EncodeOverlayWithdraw(name string) []byte {
	var w bodyWriter
	w.str(name)
	return w.b
}

// DecodeOverlayWithdraw parses a MsgOverlayWithdraw request body.
func DecodeOverlayWithdraw(body []byte) (string, error) {
	r := bodyReader{b: body}
	name := r.str()
	if r.err == nil && name == "" {
		r.err = ErrBadBody
	}
	return name, r.err
}

// EncodeOverlayTable builds a MsgOverlayPeers response body.
func EncodeOverlayTable(t OverlayTable) []byte {
	var w bodyWriter
	w.u64(t.Generation)
	w.u16(uint16(len(t.Peers)))
	for _, e := range t.Peers {
		writeOverlayEndpoint(&w, e)
	}
	w.u16(uint16(len(t.Routes)))
	for _, rt := range t.Routes {
		writeOverlayPrefix(&w, rt.Prefix)
		w.u16(rt.Peer)
	}
	return w.b
}

// DecodeOverlayTable parses a MsgOverlayPeers response body.
func DecodeOverlayTable(body []byte) (OverlayTable, error) {
	r := bodyReader{b: body}
	var t OverlayTable
	t.Generation = r.u64()
	np := int(r.u16())
	if np > overlayMaxList {
		return t, ErrBadBody
	}
	ids := make(map[uint16]bool, np)
	for i := 0; i < np && r.err == nil; i++ {
		e := readOverlayEndpoint(&r)
		if ids[e.ID] {
			r.fail() // duplicate stable id
		}
		ids[e.ID] = true
		t.Peers = append(t.Peers, e)
	}
	nr := int(r.u16())
	if nr > overlayMaxList {
		return t, ErrBadBody
	}
	for i := 0; i < nr && r.err == nil; i++ {
		rt := OverlayRoute{Prefix: readOverlayPrefix(&r)}
		rt.Peer = r.u16()
		if r.err == nil && !ids[rt.Peer] {
			r.fail() // route to a peer absent from the table
		}
		t.Routes = append(t.Routes, rt)
	}
	if r.err == nil && len(r.b) != 0 {
		r.err = ErrBadBody
	}
	return t, r.err
}

// ErrorBody encodes a MsgError body — exported so protocol servers
// outside this package (the overlay rendezvous) can reject requests with
// the standard error codes.
func ErrorBody(code uint16, text string) []byte { return errorBody(code, text) }

// OverlayRegister announces this cable's endpoint at the rendezvous and
// returns the resulting table generation.
func (c *Client) OverlayRegister(e OverlayEndpoint) (uint64, error) {
	body, err := c.do(MsgOverlayRegister, EncodeOverlayRegister(e))
	if err != nil {
		return 0, err
	}
	return DecodeOverlayGeneration(body)
}

// OverlayWithdraw removes an endpoint by name and returns the resulting
// table generation.
func (c *Client) OverlayWithdraw(name string) (uint64, error) {
	body, err := c.do(MsgOverlayWithdraw, EncodeOverlayWithdraw(name))
	if err != nil {
		return 0, err
	}
	return DecodeOverlayGeneration(body)
}

// OverlayPeers fetches the current mesh table.
func (c *Client) OverlayPeers() (OverlayTable, error) {
	body, err := c.do(MsgOverlayPeers, nil)
	if err != nil {
		return OverlayTable{}, err
	}
	return DecodeOverlayTable(body)
}
