// Command flexsfp-bench regenerates every table and figure of the
// FlexSFP paper's evaluation and prints paper-versus-model reports.
//
// Usage:
//
//	flexsfp-bench                  # run everything
//	flexsfp-bench -run table1,power
//	flexsfp-bench -seed 42
//	flexsfp-bench -trials 8        # multi-seed runs with 95% CIs
//	flexsfp-bench -parallel 4      # bound the worker pool
//	flexsfp-bench -json            # machine-readable results blob
//	flexsfp-bench -faults          # include the fault-injection sweep
//	flexsfp-bench -faults -fault-rate 0.4
//
// Experiments: table1, table2, table3, power, linerate, arch, scale,
// gap, reliability, formfactor, latency, retrofit, faults.
//
// The "faults" chaos experiment only joins "-run all" when -faults is
// given (it can also be requested by name with -run faults), keeping
// default outputs byte-identical to fault-free builds.
//
// Independent experiments run concurrently (bounded by -parallel, or
// GOMAXPROCS); output order is fixed regardless of completion order,
// and every random draw derives from -seed, so reports are identical
// for any worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"flexsfp"
	"flexsfp/internal/runner"
)

// experiment is one selectable section: run computes a human-readable
// report plus a metrics value for the -json blob.
type experiment struct {
	name string
	run  func() (render string, metrics any, err error)
}

// jsonExperiment is one entry of the -json results blob.
type jsonExperiment struct {
	Name    string  `json:"name"`
	WallMs  float64 `json:"wall_ms"`
	Metrics any     `json:"metrics"`
}

// jsonReport is the top-level -json blob, stable enough to diff across
// runs (BENCH_*.json tracking).
type jsonReport struct {
	Seed        int64            `json:"seed"`
	Trials      int              `json:"trials"`
	Parallel    int              `json:"parallel"`
	WallMs      float64          `json:"wall_ms"`
	Experiments []jsonExperiment `json:"experiments"`
}

func main() {
	runList := flag.String("run", "all", "comma-separated experiments to run (all, table1, table2, table3, power, linerate, arch, scale, gap, reliability, formfactor, latency, retrofit)")
	seed := flag.Int64("seed", 1, "simulation seed")
	trials := flag.Int("trials", 1, "independent seeds per stochastic experiment (>1 reports mean ± 95% CI)")
	parallel := flag.Int("parallel", 0, "max concurrent workers (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON results blob instead of tables")
	withFaults := flag.Bool("faults", false, "include the fault-injection sweep in -run all")
	faultRate := flag.Float64("fault-rate", 0.2, "max fault-rate multiplier swept by the faults experiment")
	flag.Parse()

	want := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	selected := func(name string) bool {
		if name == "faults" {
			// Opt-in under "all" so default reports stay byte-identical.
			return want[name] || (all && *withFaults)
		}
		return all || want[name]
	}

	// The stochastic experiments switch to their multi-seed variants when
	// -trials asks for more than one.
	multi := *trials > 1
	catalog := []experiment{
		{"table1", func() (string, any, error) {
			r := flexsfp.Table1()
			return r.Render(), r, nil
		}},
		{"table2", func() (string, any, error) {
			r := flexsfp.Table2()
			return r.Render(), r, nil
		}},
		{"table3", func() (string, any, error) {
			r := flexsfp.Table3()
			return r.Render(), r, nil
		}},
		{"power", func() (string, any, error) {
			if multi {
				r, err := flexsfp.PowerExperimentTrials(*seed, *trials, *parallel)
				return r.Render(), r, err
			}
			r, err := flexsfp.PowerExperiment(*seed)
			return r.Render(), r, err
		}},
		{"linerate", func() (string, any, error) {
			if multi {
				r, err := flexsfp.LineRateExperimentTrials(*seed, *trials, *parallel)
				return r.Render(), r, err
			}
			r, err := flexsfp.LineRateExperiment(*seed)
			return r.Render(), r, err
		}},
		{"arch", func() (string, any, error) {
			r, err := flexsfp.ArchitectureExperiment(*seed)
			return r.Render(), r, err
		}},
		{"scale", func() (string, any, error) {
			r := flexsfp.ScalabilityExperiment()
			return r.Render(), r, nil
		}},
		{"gap", func() (string, any, error) {
			r, err := flexsfp.AccelerationGapExperiment(*seed)
			return r.Render(), r, err
		}},
		{"reliability", func() (string, any, error) {
			if multi {
				r := flexsfp.ReliabilityExperimentTrials(*seed, *trials, *parallel)
				return r.Render(), r, nil
			}
			r := flexsfp.ReliabilityExperiment(*seed)
			return r.Render(), r, nil
		}},
		{"formfactor", func() (string, any, error) {
			r := flexsfp.FormFactorExperiment()
			return r.Render(), r, nil
		}},
		{"retrofit", func() (string, any, error) {
			r, err := flexsfp.RetrofitEconomicsExperiment()
			return r.Render(), r, err
		}},
		{"latency", func() (string, any, error) {
			r, err := flexsfp.LatencyOverheadExperiment()
			return r.Render(), r, err
		}},
		{"faults", func() (string, any, error) {
			r, err := flexsfp.ReconfigUnderFaultsExperiment(*seed, *trials, *parallel, *faultRate)
			return r.Render(), r, err
		}},
	}

	var chosen []experiment
	for _, e := range catalog {
		if selected(e.name) {
			chosen = append(chosen, e)
		}
	}
	if len(chosen) == 0 {
		fmt.Fprintf(os.Stderr, "flexsfp-bench: no experiment matched -run=%s\n", *runList)
		os.Exit(2)
	}

	// Run the selected experiments concurrently; each slot records its own
	// render, metrics, and wall time, and output stays in catalog order.
	renders := make([]string, len(chosen))
	metrics := make([]jsonExperiment, len(chosen))
	jobs := make([]func() error, len(chosen))
	for i, e := range chosen {
		jobs[i] = func() error {
			start := time.Now()
			render, m, err := e.run()
			if err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			renders[i] = render
			metrics[i] = jsonExperiment{
				Name:    e.name,
				WallMs:  float64(time.Since(start).Microseconds()) / 1000,
				Metrics: m,
			}
			return nil
		}
	}
	start := time.Now()
	if err := runner.Run(runner.Options{Parallelism: *parallel}, jobs...); err != nil {
		fmt.Fprintf(os.Stderr, "flexsfp-bench: %v\n", err)
		os.Exit(1)
	}

	if *jsonOut {
		blob := jsonReport{
			Seed:        *seed,
			Trials:      *trials,
			Parallel:    *parallel,
			WallMs:      float64(time.Since(start).Microseconds()) / 1000,
			Experiments: metrics,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(blob); err != nil {
			fmt.Fprintf(os.Stderr, "flexsfp-bench: encode: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, r := range renders {
		fmt.Println(r)
	}
}
