package apps

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/netip"

	"flexsfp/internal/packet"
	"flexsfp/internal/ppe"
)

// ARPGuardBindings is the binding-table capacity (one entry per host
// behind the edge port).
const ARPGuardBindings = 4096

// ARPGuardConfig configures dynamic-ARP-inspection-style spoof guarding:
// ARP frames whose sender claims an IP bound to a different MAC are
// dropped before they can poison neighbor caches.
type ARPGuardConfig struct {
	// Bindings are the authoritative IP→MAC pairs (static entries; the
	// DHCP-snooping app can feed the same shape dynamically).
	Bindings []ARPBinding `json:"bindings,omitempty"`
	// Strict drops ARP frames whose sender IP has no binding at all.
	Strict bool `json:"strict,omitempty"`
	// Direction limits enforcement ("edge-to-optical" by default: hosts
	// behind the edge port are the untrusted side).
	Direction string `json:"direction,omitempty"`
}

// ARPBinding is one authoritative IP→MAC pair.
type ARPBinding struct {
	IP  string `json:"ip"`
	MAC string `json:"mac"`
}

// ARP-guard counter indexes (bank "arpguard").
const (
	ARPGuardPassed = iota
	ARPGuardSpoofDropped
	ARPGuardUnknownDropped
	ARPGuardNonARP
	arpGuardCounters
)

type arpGuardApp struct {
	prog     *ppe.Program
	state    *ppe.State
	bindings *ppe.Table // sender IPv4(32b) → MAC(48b)
	ctr      *ppe.CounterBank
	strict   bool
	dir      string
	v        packet.View
}

// NewARPGuard builds an ARP-spoof guard instance.
func NewARPGuard() *arpGuardApp {
	a := &arpGuardApp{state: ppe.NewState(), dir: "edge-to-optical"}
	spec := ppe.TableSpec{Name: "arp_bindings", Kind: ppe.TableExact, KeyBits: 32, ValueBits: 48, Size: ARPGuardBindings}
	a.bindings = a.state.AddTable(spec)
	a.ctr = a.state.AddCounters("arpguard", arpGuardCounters)
	a.prog = &ppe.Program{
		Name:        "arpguard",
		Version:     1,
		ParseLayers: []packet.LayerType{packet.LayerTypeEthernet, packet.LayerTypeARP},
		Tables:      []ppe.TableSpec{spec},
		Actions: []ppe.ActionSpec{
			{Kind: ppe.ActionCounterBank, Count: arpGuardCounters},
		},
		Stages:  2,
		Handler: ppe.HandlerFunc(a.handle),
	}
	return a
}

// Program implements core.App.
func (a *arpGuardApp) Program() *ppe.Program { return a.prog }

// State implements core.App.
func (a *arpGuardApp) State() *ppe.State { return a.state }

// Configure implements core.App.
func (a *arpGuardApp) Configure(config []byte) error {
	if len(config) == 0 {
		return nil
	}
	var cfg ARPGuardConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return fmt.Errorf("arpguard: %w", err)
	}
	a.strict = cfg.Strict
	if cfg.Direction != "" {
		a.dir = cfg.Direction
	}
	for _, b := range cfg.Bindings {
		if err := a.Bind(b.IP, b.MAC); err != nil {
			return err
		}
	}
	return nil
}

// Bind installs one authoritative IP→MAC binding.
func (a *arpGuardApp) Bind(ip, mac string) error {
	addr, err := netip.ParseAddr(ip)
	if err != nil || !addr.Is4() {
		return fmt.Errorf("arpguard: bad binding IP %q", ip)
	}
	hw, err := packet.ParseMAC(mac)
	if err != nil {
		return fmt.Errorf("arpguard: bad binding MAC %q: %w", mac, err)
	}
	a4 := addr.As4()
	return a.bindings.Add(a4[:], hw[:])
}

func (a *arpGuardApp) handle(ctx *ppe.Ctx) ppe.Verdict {
	if !a.v.Parse(ctx.Data) || !a.v.IsARP || !dirEnabled(a.dir, ctx.Dir) {
		if a.v.IsARP {
			a.ctr.Inc(ARPGuardPassed, len(ctx.Data))
		} else {
			a.ctr.Inc(ARPGuardNonARP, len(ctx.Data))
		}
		return ppe.VerdictPass
	}
	v := &a.v

	// A sender claiming an unowned address (0.0.0.0 is a DAD probe) is
	// exempt from lookup but a spoofed L2 source is not: the Ethernet
	// source must match the ARP sender hardware address.
	if !bytes.Equal(ctx.Data[6:12], v.ARPSenderMAC()) {
		a.ctr.Inc(ARPGuardSpoofDropped, len(ctx.Data))
		return ppe.VerdictDrop
	}
	sender := v.ARPSenderIP()
	if sender[0] == 0 && sender[1] == 0 && sender[2] == 0 && sender[3] == 0 {
		a.ctr.Inc(ARPGuardPassed, len(ctx.Data))
		return ppe.VerdictPass
	}
	mac, ok := a.bindings.Lookup(sender)
	if !ok {
		if a.strict {
			a.ctr.Inc(ARPGuardUnknownDropped, len(ctx.Data))
			return ppe.VerdictDrop
		}
		a.ctr.Inc(ARPGuardPassed, len(ctx.Data))
		return ppe.VerdictPass
	}
	if !bytes.Equal(mac, v.ARPSenderMAC()) {
		a.ctr.Inc(ARPGuardSpoofDropped, len(ctx.Data))
		return ppe.VerdictDrop
	}
	a.ctr.Inc(ARPGuardPassed, len(ctx.Data))
	return ppe.VerdictPass
}
