package hls

import (
	"encoding/json"
	"errors"
	"fmt"

	"flexsfp/internal/bitstream"
	"flexsfp/internal/fpga"
	"flexsfp/internal/ppe"
)

// Options configures a compilation.
type Options struct {
	Device       fpga.Device
	Shell        Shell
	ClockHz      int64 // PPE clock; 156_250_000 for the 10G baseline
	DatapathBits int   // 64 for the SFP+ prototype
	Golden       bool  // mark the resulting bitstream as factory fallback
	// Config is an opaque app-specific configuration blob carried in the
	// bitstream manifest (e.g. static rules loaded at boot).
	Config []byte
	// Optimized records that the program was run through the opt pass
	// pipeline before compilation. The flag is carried in the manifest so
	// the module's boot FSM re-applies the same (idempotent) passes when
	// it re-instantiates the app, keeping the booted structure identical
	// to the compiled one.
	Optimized bool
}

// Compilation errors.
var (
	ErrDoesNotFit    = errors.New("hls: design does not fit target device")
	ErrTimingFailure = errors.New("hls: design does not close timing")
	ErrBadOptions    = errors.New("hls: invalid options")
)

// Design is the output of Compile: the full implementation report plus a
// loadable bitstream.
type Design struct {
	Program      *ppe.Program
	Target       fpga.Device
	Shell        Shell
	ClockHz      int64
	DatapathBits int

	// App is the PPE application's own resources (Table 1 "NAT app" row).
	App fpga.Resources
	// ShellRes is the fixed shell (Mi-V + interfaces + glue).
	ShellRes fpga.Resources
	// Total is App + ShellRes (Table 1 "Used" row).
	Total fpga.Resources

	Fit                fpga.FitReport
	AchievableClockMHz float64
	PipelineDepth      int

	Bitstream *bitstream.Bitstream
}

// Manifest is the JSON structure carried in the bitstream payload. It is
// enough for the module's boot FSM to re-instantiate and sanity-check the
// application against the registered factory.
type Manifest struct {
	Name         string          `json:"name"`
	Version      uint32          `json:"version"`
	Shell        Shell           `json:"shell"`
	ParseLayers  []int           `json:"parse_layers"`
	Stages       int             `json:"stages"`
	Tables       []ppe.TableSpec `json:"tables"`
	Config       []byte          `json:"config,omitempty"`
	Optimized    bool            `json:"optimized,omitempty"`
	AppLUT4      int             `json:"app_lut4"`
	AppFF        int             `json:"app_ff"`
	AppUSRAM     int             `json:"app_usram"`
	AppLSRAM     int             `json:"app_lsram"`
	DatapathBits int             `json:"datapath_bits"`
}

// Compile runs the modeled HLS + integration flow: estimate the program's
// resources, add the shell, check fit and timing on the target device,
// and emit a loadable bitstream.
func Compile(p *ppe.Program, opts Options) (*Design, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.ClockHz <= 0 || opts.DatapathBits < 8 {
		return nil, fmt.Errorf("%w: clock %d Hz, datapath %d bits", ErrBadOptions, opts.ClockHz, opts.DatapathBits)
	}
	if opts.Device.Name == "" {
		opts.Device = fpga.MPF200T
	}

	d := &Design{
		Program:      p,
		Target:       opts.Device,
		Shell:        opts.Shell,
		ClockHz:      opts.ClockHz,
		DatapathBits: opts.DatapathBits,
		App:          EstimateProgram(p, opts.DatapathBits),
		ShellRes:     ShellResources(opts.Shell),
	}
	d.Total = d.App.Add(d.ShellRes)
	d.Fit = opts.Device.Fit(d.Total)
	if !d.Fit.Fits {
		return d, fmt.Errorf("%w: %s limited by %s", ErrDoesNotFit, opts.Device.Name, d.Fit.Limiting)
	}
	util := d.Fit.Utilization.Max() / 100
	d.AchievableClockMHz = opts.Device.AchievableClockMHz(util, opts.DatapathBits)
	requiredMHz := float64(opts.ClockHz) / 1e6
	if d.AchievableClockMHz < requiredMHz {
		return d, fmt.Errorf("%w: need %.2f MHz, achievable %.2f MHz",
			ErrTimingFailure, requiredMHz, d.AchievableClockMHz)
	}
	d.PipelineDepth = p.PipelineDepth(opts.DatapathBits)

	layers := make([]int, len(p.ParseLayers))
	for i, lt := range p.ParseLayers {
		layers[i] = int(lt)
	}
	payload, err := json.Marshal(Manifest{
		Name:         p.Name,
		Version:      p.Version,
		Shell:        opts.Shell,
		ParseLayers:  layers,
		Stages:       p.Stages,
		Tables:       p.Tables,
		Config:       opts.Config,
		Optimized:    opts.Optimized,
		AppLUT4:      d.App.LUT4,
		AppFF:        d.App.FF,
		AppUSRAM:     d.App.USRAM,
		AppLSRAM:     d.App.LSRAM,
		DatapathBits: opts.DatapathBits,
	})
	if err != nil {
		return nil, fmt.Errorf("hls: encoding manifest: %w", err)
	}
	var flags uint16
	if opts.Golden {
		flags |= bitstream.FlagGolden
	}
	d.Bitstream = &bitstream.Bitstream{
		AppName:      p.Name,
		AppVersion:   p.Version,
		Device:       opts.Device.Name,
		ClockKHz:     uint32(opts.ClockHz / 1000),
		DatapathBits: uint16(opts.DatapathBits),
		Flags:        flags,
		Payload:      payload,
	}
	return d, nil
}

// ParseManifest decodes a bitstream payload back into its manifest.
func ParseManifest(payload []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("hls: decoding manifest: %w", err)
	}
	return &m, nil
}
