GO ?= go

# Packages with real concurrency (fleet fan-out, TCP serving, parallel
# trial runner, the registry-driven experiment harness, fault-injected
# transports, the lock-free datapath tables, the telemetry record paths):
# the race pass focuses here so `make check` stays fast; `make race-all`
# still sweeps everything.
RACE_PKGS = ./internal/mgmt ./internal/netsim ./internal/runner ./internal/exp/... ./internal/faults ./internal/ppe ./internal/reliability ./internal/telemetry ./internal/daemon ./internal/opt/... ./internal/xdp ./internal/trafficgen ./internal/packet ./internal/apps ./internal/overlay

# Packages holding the per-frame hot paths; bench-json and the smoke run
# cover exactly these plus the root end-to-end suites.
HOT_PKGS = ./internal/ppe ./internal/netsim ./internal/trafficgen .

.PHONY: all build test race race-all bench bench-json bench-list smoke shard-smoke fuzz-smoke telemetry-smoke fleet-smoke opt-smoke catalog-smoke overlay-smoke vet fmt check examples reports clean

all: build test

# Everything CI cares about: compile, unit tests, race detector, vet,
# the experiment-registry smoke check, the hot-path smoke run
# (alloc-regression tests and a -benchtime=1x pass over every benchmark),
# the shard-determinism smoke, a short pass over every native fuzz
# target, and a race-mode run of the default experiment suite with
# telemetry attached.
check: build test race vet bench-list smoke shard-smoke fuzz-smoke telemetry-smoke fleet-smoke opt-smoke catalog-smoke overlay-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

race-all:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable hot-path numbers (the blob tracked in
# docs/BENCH_PR*.json): every benchmark in the hot-path packages, one
# sample each, as JSON on stdout.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -count=1 $(HOT_PKGS) | $(GO) run ./tools/benchjson

# Fast hot-path gate: zero-alloc regression tests plus one iteration of
# every benchmark (catches bit-rotted benches and alloc creep without
# paying for full measurement runs).
smoke:
	$(GO) test -run 'ZeroAlloc' ./internal/ppe ./internal/netsim ./internal/telemetry
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem $(HOT_PKGS) > /dev/null

# Shard-determinism gate: the netsim experiments must emit byte-identical
# JSON whether they run on one event heap or four (the Shards knob is
# execution placement, not a model parameter). Only wall-clock lines may
# differ.
shard-smoke:
	@$(GO) run ./cmd/flexsfp-bench -run linerate,reliability -json -shards 1 | grep -v '"wall_ms"' > /tmp/flexsfp-shards1.json; \
	$(GO) run ./cmd/flexsfp-bench -run linerate,reliability -json -shards 4 | grep -v '"wall_ms"' > /tmp/flexsfp-shards4.json; \
	diff /tmp/flexsfp-shards1.json /tmp/flexsfp-shards4.json > /dev/null || { echo "shard-smoke: -shards 1 and -shards 4 JSON differ" >&2; exit 1; }; \
	echo "shard-smoke: -shards 1 == -shards 4"

# Short mutation pass over every native fuzz target (go fuzz accepts one
# target per invocation). Longer runs: go test -fuzz=<target> <pkg>.
fuzz-smoke:
	$(GO) test -fuzz 'FuzzDecodeMessage' -fuzztime 10s ./internal/mgmt > /dev/null
	$(GO) test -fuzz 'FuzzAgentHandle' -fuzztime 10s ./internal/mgmt > /dev/null
	$(GO) test -fuzz 'FuzzPacketDecode' -fuzztime 10s ./internal/packet > /dev/null
	$(GO) test -fuzz 'FuzzParserDecodeLayers' -fuzztime 10s ./internal/packet > /dev/null
	$(GO) test -fuzz 'FuzzViewVsDecode' -fuzztime 10s ./internal/packet > /dev/null
	$(GO) test -fuzz 'FuzzXDPVerify' -fuzztime 10s ./internal/xdp > /dev/null
	$(GO) test -fuzz 'FuzzXDPRun' -fuzztime 10s ./internal/xdp > /dev/null
	$(GO) test -fuzz 'FuzzOptimizeEquivalence' -fuzztime 10s ./internal/opt > /dev/null
	$(GO) test -fuzz 'FuzzOverlayDecap' -fuzztime 10s ./internal/apps > /dev/null

# Race-mode run of the default experiment suite with instrumentation
# attached: the parallel trial runner records into shared registries, so
# this catches telemetry races the unit tests' synthetic load might miss.
telemetry-smoke:
	$(GO) run -race ./cmd/flexsfp-bench -telemetry -run linerate,power -json > /dev/null

# Fleet-controller gate: a small sharded OTA rollout with the full chaos
# model on must leave zero modules on a tampered/unbootable image or
# wedged on the target (the bounded-blast-radius invariant, counted from
# member ground truth in the fleet_ota detail payload).
fleet-smoke:
	@out="$$($(GO) run ./cmd/flexsfp-bench -run fleet_ota -json -fleet 2000 -fleet-shards 8)"; \
	printf '%s\n' "$$out" | grep -q '"modules_bad_end": 0' || { echo "fleet-smoke: modules left on a bad image" >&2; printf '%s\n' "$$out" | grep 'modules_bad_end' >&2; exit 1; }; \
	echo "fleet-smoke: 2000 modules updated under chaos, 0 left on a bad image"

# Optimizer gate: compile + optimize every catalog app and fail if any
# depth regresses or any verdict diverges from the unoptimized build
# (the pipeline_opt experiment measures both on every run).
opt-smoke:
	@out="$$($(GO) run ./cmd/flexsfp-bench -run pipeline_opt -json)"; \
	printf '%s\n' "$$out" | grep -q '"name": "depth_regressions"' || { echo "opt-smoke: depth_regressions metric missing" >&2; exit 1; }; \
	printf '%s\n' "$$out" | grep -A1 '"name": "depth_regressions"' | grep -q '"mean": 0' || { echo "opt-smoke: optimizer increased a pipeline depth" >&2; exit 1; }; \
	printf '%s\n' "$$out" | grep -A1 '"name": "verdict_mismatches"' | grep -q '"mean": 0' || { echo "opt-smoke: optimized verdicts diverged" >&2; exit 1; }; \
	echo "opt-smoke: all apps optimize with no depth regressions and matching verdicts"

# App-catalog gate: every registry app (plus the two-way shell) must fit
# the MPF200T, and the edge-protocol trio (arpguard, dhcpsnoop, dnsblock)
# must hold line rate on its matched traffic profile. The xdp interpreter
# is program-bound (≈10.5 Mpps < 64B line rate), so the gate checks
# fits_all + new_apps_line_rate, not line rate over every app.
catalog-smoke:
	@out="$$($(GO) run ./cmd/flexsfp-bench -run catalog -json)"; \
	printf '%s\n' "$$out" | grep -A2 '"name": "fits_all"' | grep -q '"mean": 1' || { echo "catalog-smoke: an app does not fit the MPF200T" >&2; exit 1; }; \
	printf '%s\n' "$$out" | grep -A2 '"name": "new_apps_line_rate"' | grep -q '"mean": 1' || { echo "catalog-smoke: a new app dropped frames on its matched profile" >&2; exit 1; }; \
	echo "catalog-smoke: all apps fit, edge-protocol trio holds line rate"

# Overlay-mesh gate: both overlay experiments must be shard-count
# invariant (byte-identical JSON at -shards 1 and 4, only wall-clock
# lines may differ), and the failover chaos run must deliver zero frames
# to the withdrawn peer after convergence with every affected flow
# re-converged.
overlay-smoke:
	@$(GO) run ./cmd/flexsfp-bench -run overlay_linerate,overlay_failover -json -shards 1 | grep -v '"wall_ms"' > /tmp/flexsfp-overlay1.json; \
	$(GO) run ./cmd/flexsfp-bench -run overlay_linerate,overlay_failover -json -shards 4 | grep -v '"wall_ms"' > /tmp/flexsfp-overlay4.json; \
	diff /tmp/flexsfp-overlay1.json /tmp/flexsfp-overlay4.json > /dev/null || { echo "overlay-smoke: -shards 1 and -shards 4 JSON differ" >&2; exit 1; }; \
	grep -A1 '"name": "frames_to_withdrawn_post"' /tmp/flexsfp-overlay1.json | grep -q '"mean": 0' || { echo "overlay-smoke: frames delivered to the withdrawn peer" >&2; exit 1; }; \
	grep -A1 '"name": "recovered_fraction"' /tmp/flexsfp-overlay1.json | grep -q '"mean": 1' || { echo "overlay-smoke: a flow failed to re-converge" >&2; exit 1; }; \
	echo "overlay-smoke: shard-invariant, 0 frames to withdrawn peer, all flows re-converged"

# Registry smoke check: the bench binary must enumerate a non-empty
# experiment catalog with unique names (a broken registration init or a
# duplicate ID fails the build before anything tries to -run it).
bench-list:
	@out="$$($(GO) run ./cmd/flexsfp-bench -list)"; \
	test -n "$$out" || { echo "bench-list: registry is empty" >&2; exit 1; }; \
	dups="$$(printf '%s\n' "$$out" | awk '{print $$1}' | sort | uniq -d)"; \
	test -z "$$dups" || { echo "bench-list: duplicate experiment names: $$dups" >&2; exit 1; }; \
	echo "bench-list: $$(printf '%s\n' "$$out" | wc -l) experiments registered"

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Run every example scenario once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/legacy-retrofit
	$(GO) run ./examples/telemetry
	$(GO) run ./examples/loadbalancer
	$(GO) run ./examples/ota-update
	$(GO) run ./examples/xdp-offload

# Regenerate the paper-vs-model reports.
reports:
	$(GO) run ./cmd/flexsfp-bench

clean:
	$(GO) clean ./...
