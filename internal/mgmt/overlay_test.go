package mgmt

import (
	"errors"
	"reflect"
	"testing"
)

func overlayTestEndpoint(i byte) OverlayEndpoint {
	return OverlayEndpoint{
		Name:   "cable-" + string('0'+rune(i)),
		ID:     uint16(i),
		IP:     [4]byte{10, 254, 0, i},
		MAC:    [6]byte{0x02, 0xcc, 0, 0, 0, i},
		Mode:   1 + i%2,
		VNI:    4000 + uint32(i),
		GREKey: 700 + uint32(i),
		Prefixes: []OverlayPrefix{
			{IP: [4]byte{10, 200, i, 0}, Len: 24},
			{IP: [4]byte{10, 201, i, 0}, Len: 24, Priority: 1},
		},
	}
}

// Table-driven round-trip vectors for every overlay body codec.
func TestOverlayCodecRoundTrip(t *testing.T) {
	t.Run("register", func(t *testing.T) {
		for i := byte(0); i < 4; i++ {
			want := overlayTestEndpoint(i)
			got, err := DecodeOverlayRegister(EncodeOverlayRegister(want))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("endpoint %d: got %+v, want %+v", i, got, want)
			}
		}
		// No prefixes is legal (a transit-only cable).
		e := overlayTestEndpoint(0)
		e.Prefixes = nil
		if got, err := DecodeOverlayRegister(EncodeOverlayRegister(e)); err != nil || len(got.Prefixes) != 0 {
			t.Fatalf("prefix-less endpoint: %+v, %v", got, err)
		}
	})
	t.Run("withdraw", func(t *testing.T) {
		got, err := DecodeOverlayWithdraw(EncodeOverlayWithdraw("cable-3"))
		if err != nil || got != "cable-3" {
			t.Fatalf("got %q, %v", got, err)
		}
	})
	t.Run("generation", func(t *testing.T) {
		for _, gen := range []uint64{0, 1, 1 << 40} {
			got, err := DecodeOverlayGeneration(EncodeOverlayGeneration(gen))
			if err != nil || got != gen {
				t.Fatalf("gen %d: got %d, %v", gen, got, err)
			}
		}
	})
	t.Run("table", func(t *testing.T) {
		want := OverlayTable{
			Generation: 17,
			Peers:      []OverlayEndpoint{overlayTestEndpoint(1), overlayTestEndpoint(2)},
			Routes: []OverlayRoute{
				{Prefix: OverlayPrefix{IP: [4]byte{10, 200, 1, 0}, Len: 24}, Peer: 1},
				{Prefix: OverlayPrefix{IP: [4]byte{10, 200, 2, 0}, Len: 24}, Peer: 2},
			},
		}
		got, err := DecodeOverlayTable(EncodeOverlayTable(want))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("got %+v, want %+v", got, want)
		}
		// Empty table round-trips too (pre-registration state).
		empty := OverlayTable{Generation: 0}
		if got, err := DecodeOverlayTable(EncodeOverlayTable(empty)); err != nil ||
			got.Generation != 0 || len(got.Peers) != 0 || len(got.Routes) != 0 {
			t.Fatalf("empty table: %+v, %v", got, err)
		}
	})
}

// Malformed bodies must fail with ErrBadBody, never panic or decode into
// nonsense.
func TestOverlayCodecRejectsMalformed(t *testing.T) {
	validReg := EncodeOverlayRegister(overlayTestEndpoint(1))
	validTable := EncodeOverlayTable(OverlayTable{
		Generation: 1,
		Peers:      []OverlayEndpoint{overlayTestEndpoint(1)},
		Routes:     []OverlayRoute{{Prefix: OverlayPrefix{IP: [4]byte{10, 200, 1, 0}, Len: 24}, Peer: 1}},
	})

	vectors := []struct {
		name   string
		decode func([]byte) error
		body   []byte
	}{
		{"register/truncated", decodeRegErr, validReg[:len(validReg)-3]},
		{"register/trailing-bytes", decodeRegErr, append(append([]byte(nil), validReg...), 0xff)},
		{"register/empty-name", decodeRegErr, EncodeOverlayRegister(OverlayEndpoint{})},
		{"register/prefix-len-over-32", decodeRegErr, func() []byte {
			e := overlayTestEndpoint(1)
			e.Prefixes[0].Len = 33
			return EncodeOverlayRegister(e)
		}()},
		{"register/prefix-count-lie", decodeRegErr, func() []byte {
			b := append([]byte(nil), validReg...)
			// The prefix count u16 sits 10 bytes from the end of the two
			// 6-byte prefixes; easier: truncate one prefix off but keep
			// the count.
			return b[:len(b)-6]
		}()},
		{"withdraw/empty", decodeWithdrawErr, EncodeOverlayWithdraw("")},
		{"withdraw/truncated", decodeWithdrawErr, []byte{0, 5, 'a'}},
		{"generation/short", decodeGenErr, []byte{1, 2, 3}},
		{"table/truncated", decodeTableErr, validTable[:len(validTable)-5]},
		{"table/trailing-bytes", decodeTableErr, append(append([]byte(nil), validTable...), 1)},
		{"table/route-peer-unknown-id", decodeTableErr, func() []byte {
			b := append([]byte(nil), validTable...)
			b[len(b)-1] = 9 // route's peer id — no peer has id 9
			return b
		}()},
	}
	for _, vec := range vectors {
		t.Run(vec.name, func(t *testing.T) {
			if err := vec.decode(vec.body); err == nil {
				t.Fatal("malformed body accepted")
			} else if !errors.Is(err, ErrBadBody) {
				t.Fatalf("err = %v, want ErrBadBody", err)
			}
		})
	}
}

func decodeRegErr(b []byte) error      { _, err := DecodeOverlayRegister(b); return err }
func decodeWithdrawErr(b []byte) error { _, err := DecodeOverlayWithdraw(b); return err }
func decodeGenErr(b []byte) error      { _, err := DecodeOverlayGeneration(b); return err }
func decodeTableErr(b []byte) error    { _, err := DecodeOverlayTable(b); return err }

// The client methods speak the right message types and decode replies;
// the fake rendezvous answers from the codec, so this also pins the
// request bodies to what a real rendezvous expects.
func TestClientOverlayMethods(t *testing.T) {
	table := OverlayTable{Generation: 2, Peers: []OverlayEndpoint{overlayTestEndpoint(1)}}
	var gotTypes []MsgType
	c := NewClient(TransportFunc(func(req []byte) ([]byte, error) {
		msg, err := DecodeMessage(req)
		if err != nil {
			t.Fatal(err)
		}
		gotTypes = append(gotTypes, msg.Type)
		switch msg.Type {
		case MsgOverlayRegister:
			if _, err := DecodeOverlayRegister(msg.Body); err != nil {
				t.Fatalf("register body: %v", err)
			}
			return Message{Type: MsgOK, ReqID: msg.ReqID, Body: EncodeOverlayGeneration(1)}.Encode(), nil
		case MsgOverlayWithdraw:
			name, err := DecodeOverlayWithdraw(msg.Body)
			if err != nil || name != "cable-1" {
				t.Fatalf("withdraw body: %q, %v", name, err)
			}
			return Message{Type: MsgOK, ReqID: msg.ReqID, Body: EncodeOverlayGeneration(2)}.Encode(), nil
		case MsgOverlayPeers:
			return Message{Type: MsgOK, ReqID: msg.ReqID, Body: EncodeOverlayTable(table)}.Encode(), nil
		}
		return Message{Type: MsgError, ReqID: msg.ReqID, Body: errorBody(CodeUnknownType, "?")}.Encode(), nil
	}))

	gen, err := c.OverlayRegister(overlayTestEndpoint(1))
	if err != nil || gen != 1 {
		t.Fatalf("register: gen %d, %v", gen, err)
	}
	got, err := c.OverlayPeers()
	if err != nil || !reflect.DeepEqual(got, table) {
		t.Fatalf("peers: %+v, %v", got, err)
	}
	gen, err = c.OverlayWithdraw("cable-1")
	if err != nil || gen != 2 {
		t.Fatalf("withdraw: gen %d, %v", gen, err)
	}
	want := []MsgType{MsgOverlayRegister, MsgOverlayPeers, MsgOverlayWithdraw}
	if !reflect.DeepEqual(gotTypes, want) {
		t.Fatalf("message types = %v, want %v", gotTypes, want)
	}
}
