package xdp_test

import (
	"testing"

	"flexsfp/internal/fpga"
	"flexsfp/internal/hls"
	"flexsfp/internal/xdp"
)

// progOfSize builds a verifiable program with exactly n instructions
// (n >= 2): filler movs, then the pass/exit epilogue.
func progOfSize(n int) *xdp.Program {
	insns := make([]xdp.Insn, 0, n)
	for i := 0; i < n-2; i++ {
		insns = append(insns, xdp.MovImm(1, int64(i)))
	}
	insns = append(insns, xdp.MovImm(0, xdp.ActPass), xdp.Exit())
	return &xdp.Program{Name: "sized", Insns: insns}
}

// TestStageRoundingBoundaries pins the ceiling rounding of the
// instruction-store → stage mapping at the exact-multiple boundaries
// (insns % InsnsPerStage == 0). The historical off-by-one charged a
// fully filled store an extra empty stage: stagesFor(1024) was 2.
func TestStageRoundingBoundaries(t *testing.T) {
	cases := []struct {
		insns, stages int
	}{
		{2, 1},
		{1023, 1},
		{1024, 1}, // exact multiple: fills one stage, not one-plus
		{1025, 2},
		{2047, 2},
		{2048, 2}, // exact multiple
		{2049, 3},
		{3072, 3}, // exact multiple
		{4095, 4},
		{4096, 4}, // MaxInsns: still the 4-stage clamp
	}
	for _, c := range cases {
		p := progOfSize(c.insns)
		prog, err := xdp.Offload(p)
		if err != nil {
			t.Fatalf("offload %d insns: %v", c.insns, err)
		}
		if prog.Stages != c.stages {
			t.Errorf("stages(%d insns) = %d, want %d", c.insns, prog.Stages, c.stages)
		}
		if prog.ProgCycles != c.insns {
			t.Errorf("ProgCycles(%d insns) = %d, want scalar retire", c.insns, prog.ProgCycles)
		}
	}
}

// TestOffloadAgreesWithHLSAtBoundary cross-checks the two estimators the
// way the satellite demands: the per-stage charges hls.EstimateProgram
// levies must not jump across an exact-multiple boundary (1023 → 1024
// instructions keeps one stage, so identical stage/action structure ⇒
// identical estimate), and must jump exactly when the store spills
// (1024 → 1025).
func TestOffloadAgreesWithHLSAtBoundary(t *testing.T) {
	est := func(insns int) (int, fpga.Resources) {
		p, err := xdp.Offload(progOfSize(insns))
		if err != nil {
			t.Fatal(err)
		}
		return p.Stages, hls.EstimateProgram(p, 64)
	}
	s1023, r1023 := est(1023)
	s1024, r1024 := est(1024)
	s1025, r1025 := est(1025)
	if s1023 != s1024 {
		t.Fatalf("stage count changed below the boundary: %d vs %d", s1023, s1024)
	}
	if r1023 != r1024 {
		t.Fatalf("estimate changed without a structural change: %+v vs %+v", r1023, r1024)
	}
	if s1025 != s1024+1 {
		t.Fatalf("crossing the boundary must add exactly one stage: %d -> %d", s1024, s1025)
	}
	if r1025.LUT4 <= r1024.LUT4 || r1025.USRAM <= r1024.USRAM {
		t.Fatalf("extra stage did not cost fabric: %+v -> %+v", r1024, r1025)
	}
}

// TestAlignedCostClampBoundaries pins the checked-access unit's cost
// envelope: the offloaded ActionRewrite width is the aligned
// per-instruction cost clamped inclusively to [32, 4096], so the exact
// envelope edge (512 insns × 8 = 4096) prices the envelope itself.
func TestAlignedCostClampBoundaries(t *testing.T) {
	cases := []struct {
		insns, bits int
	}{
		{2, 32},      // floor clamp
		{4, 32},      // exactly the floor
		{5, 40},      // just above the floor
		{511, 4088},  // just under the ceiling
		{512, 4096},  // exactly the ceiling
		{513, 4096},  // ceiling clamp
		{4096, 4096}, // max program
	}
	for _, c := range cases {
		p, err := xdp.Offload(progOfSize(c.insns))
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Actions[0].Bits; got != c.bits {
			t.Errorf("alignedCost(%d insns) = %d bits, want %d", c.insns, got, c.bits)
		}
	}
}
