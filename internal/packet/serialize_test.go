package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSerializeBufferPrependAppend(t *testing.T) {
	b := NewSerializeBufferExpectedSize(4, 4)
	copy(b.AppendBytes(3), "cde")
	copy(b.PrependBytes(2), "ab")
	if string(b.Bytes()) != "abcde" {
		t.Errorf("Bytes = %q", b.Bytes())
	}
	if b.Len() != 5 {
		t.Errorf("Len = %d", b.Len())
	}
}

func TestSerializeBufferGrowsFront(t *testing.T) {
	b := NewSerializeBufferExpectedSize(2, 2)
	copy(b.PrependBytes(100), bytes.Repeat([]byte{7}, 100))
	if b.Len() != 100 {
		t.Errorf("Len = %d", b.Len())
	}
	for _, c := range b.Bytes() {
		if c != 7 {
			t.Fatal("front growth corrupted data")
		}
	}
}

func TestSerializeBufferClear(t *testing.T) {
	b := NewSerializeBuffer()
	copy(b.AppendBytes(10), bytes.Repeat([]byte{1}, 10))
	b.Clear()
	if b.Len() != 0 {
		t.Errorf("Len after Clear = %d", b.Len())
	}
	// Headroom restored: a prepend must not reallocate for typical headers.
	b.PrependBytes(64)
	if b.Len() != 64 {
		t.Errorf("Len = %d", b.Len())
	}
}

func TestSerializeBufferAppendZeroed(t *testing.T) {
	b := NewSerializeBuffer()
	s := b.AppendBytes(8)
	for i := range s {
		s[i] = 0xff
	}
	b.Clear()
	s2 := b.AppendBytes(8)
	for _, c := range s2 {
		if c != 0 {
			t.Fatal("AppendBytes returned dirty memory")
		}
	}
}

func TestBuilderPadTo(t *testing.T) {
	data := MustBuild(Spec{
		SrcMAC: macA, DstMAC: macB,
		SrcIP: ip1, DstIP: ip2,
		SrcPort: 1, DstPort: 2,
		PadTo: 64,
	})
	if len(data) != 64 {
		t.Errorf("frame = %d bytes, want 64", len(data))
	}
	pkt := NewPacket(data, LayerTypeEthernet)
	if pkt.ErrorLayer() != nil {
		t.Fatal(pkt.ErrorLayer())
	}
}

func TestBuilderICMP(t *testing.T) {
	data := MustBuild(Spec{
		SrcMAC: macA, DstMAC: macB,
		SrcIP: ip1, DstIP: ip2,
		Proto: IPProtocolICMPv4, SrcPort: 3, DstPort: 4,
	})
	pkt := NewPacket(data, LayerTypeEthernet)
	ic := pkt.Layer(LayerTypeICMPv4)
	if ic == nil {
		t.Fatal("no ICMP layer")
	}
	if ic.(*ICMPv4).ID != 3 || ic.(*ICMPv4).Seq != 4 {
		t.Errorf("icmp = %+v", ic)
	}
}

func TestBuilderRejectsMixedFamilies(t *testing.T) {
	_, err := Build(Spec{SrcMAC: macA, DstMAC: macB, SrcIP: ip1, DstIP: ip62})
	if err == nil {
		t.Error("mixed families accepted")
	}
}

func TestBuilderRejectsMissingIPs(t *testing.T) {
	_, err := Build(Spec{SrcMAC: macA, DstMAC: macB})
	if err == nil {
		t.Error("missing IPs accepted")
	}
}

// Property: every packet the builder produces decodes cleanly back to the
// same 5-tuple, for arbitrary ports and both families.
func TestBuildDecodeRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, useV6, useTCP bool, size uint8) bool {
		spec := Spec{
			SrcMAC: macA, DstMAC: macB,
			SrcPort: sp, DstPort: dp,
			Payload: bytes.Repeat([]byte{0x5a}, int(size)),
		}
		if useV6 {
			spec.SrcIP, spec.DstIP = ip61, ip62
		} else {
			spec.SrcIP, spec.DstIP = ip1, ip2
		}
		if useTCP {
			spec.Proto = IPProtocolTCP
		}
		data, err := Build(spec)
		if err != nil {
			return false
		}
		pkt := NewPacket(data, LayerTypeEthernet)
		if pkt.ErrorLayer() != nil {
			return false
		}
		if useTCP {
			l := pkt.Layer(LayerTypeTCP)
			if l == nil {
				return false
			}
			tc := l.(*TCP)
			return tc.SrcPort == sp && tc.DstPort == dp && len(tc.LayerPayload()) == int(size)
		}
		l := pkt.Layer(LayerTypeUDP)
		if l == nil {
			return false
		}
		u := l.(*UDP)
		return u.SrcPort == sp && u.DstPort == dp && len(u.LayerPayload()) == int(size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: serialized transport checksums always verify at the receiver.
func TestChecksumAlwaysVerifiesProperty(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		data, err := Build(Spec{
			SrcMAC: macA, DstMAC: macB, SrcIP: ip1, DstIP: ip2,
			SrcPort: sp, DstPort: dp, Payload: payload,
		})
		if err != nil {
			return false
		}
		var eth Ethernet
		var ip IPv4
		if eth.DecodeFromBytes(data) != nil || ip.DecodeFromBytes(eth.LayerPayload()) != nil {
			return false
		}
		if !VerifyIPv4Checksum(eth.LayerPayload()) {
			return false
		}
		s4, d4 := ip.SrcIP.As4(), ip.DstIP.As4()
		return TransportChecksum(ip.LayerPayload(), s4[:], d4[:], IPProtocolUDP) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
