package flexsfp

// End-to-end telemetry integration: a traced frame's hops must form the
// complete generator → link → module → PPE → egress chain, and the metric
// snapshot must agree with the traffic actually carried.

import (
	"testing"

	"flexsfp/internal/apps"
	"flexsfp/internal/core"
	"flexsfp/internal/netsim"
	"flexsfp/internal/telemetry"
	"flexsfp/internal/trafficgen"
)

func TestTracedPathThroughStack(t *testing.T) {
	sim := NewSim(7)
	mod, _, err := BuildModule(sim, ModuleSpec{
		Name: "dut", DeviceID: 9, Shell: TwoWayCore, App: "nat",
		Config: apps.NATConfig{
			Direction: "edge-to-optical",
			Mappings:  []apps.NATMapping{{Internal: "10.1.0.1", External: "203.0.113.7"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	tr := telemetry.NewTracer(2, 1024) // 1-in-2 sampling
	reg.SetTracer(tr)
	mod.AttachTelemetry(reg)
	sim.AttachTelemetry(reg, "sim")

	hostLink := netsim.NewLink(sim, igTenGig, 500, mod.RxEdge)
	hostLink.SetTelemetry(tr, reg.Histogram("link.edge.queue_depth", telemetry.LinearBuckets(0, 1, 16)))

	var egressed int
	mod.SetTx(core.PortOptical, func(b []byte) {
		egressed++
		trafficgen.PutBuffer(b)
	})

	gen := trafficgen.New(sim, trafficgen.Config{PPS: 1_000_000, Flows: 1}, hostLink.Send)
	gen.SetTracer(tr)
	const frames = 20
	gen.Run(frames)
	sim.Run()

	if egressed != frames {
		t.Fatalf("egressed %d frames, want %d", egressed, frames)
	}

	snap := reg.Snapshot()
	if v, _ := snap.Counter("ppe.frames_in"); v != frames {
		t.Fatalf("ppe.frames_in = %d", v)
	}
	if v, _ := snap.Counter("ppe.verdict.pass"); v != frames {
		t.Fatalf("ppe.verdict.pass = %d", v)
	}
	if v, _ := snap.Gauge("module.tx.optical"); v != frames {
		t.Fatalf("module.tx.optical = %v", v)
	}
	if snap.TraceSeen != frames || snap.TraceSampled != frames/2 {
		t.Fatalf("trace seen/sampled = %d/%d", snap.TraceSeen, snap.TraceSampled)
	}
	if lat, ok := snap.Histogram("ppe.latency_ns"); !ok || lat.Count != frames {
		t.Fatalf("latency histogram count = %+v", lat)
	}
	if gap, ok := snap.Histogram("sim.event_gap_ns"); !ok || gap.Count == 0 {
		t.Fatal("event gap histogram empty")
	}

	// Every sampled frame must have recorded the full hop chain, in order
	// and with non-decreasing timestamps.
	wantChain := []telemetry.Stage{
		telemetry.StageGen, telemetry.StageLinkTx, telemetry.StageLinkRx,
		telemetry.StageRx, telemetry.StageSubmit, telemetry.StageVerdict,
		telemetry.StageTx,
	}
	chains := map[uint64][]telemetry.TraceEvent{}
	for _, e := range tr.Events() {
		chains[e.ID] = append(chains[e.ID], e)
	}
	if len(chains) != frames/2 {
		t.Fatalf("traced %d distinct frames, want %d", len(chains), frames/2)
	}
	for id, evs := range chains {
		if len(evs) != len(wantChain) {
			t.Fatalf("frame %d recorded %d hops, want %d: %+v", id, len(evs), len(wantChain), evs)
		}
		for i, e := range evs {
			if e.Stage != wantChain[i] {
				t.Fatalf("frame %d hop %d = %v, want %v", id, i, e.Stage, wantChain[i])
			}
			if i > 0 && e.TimeNs < evs[i-1].TimeNs {
				t.Fatalf("frame %d time went backwards at hop %d: %+v", id, i, evs)
			}
		}
	}
}
