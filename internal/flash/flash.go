// Package flash models the FlexSFP's 128 Mb SPI NOR flash (§4.3): sector
// erase / page program / random read with datasheet-class timings, per-
// sector wear counters, a slotted layout for holding multiple design
// bitstreams ("the flash memory is such that multiple designs could be
// stored"), and power-cut corruption injection for recovery testing.
//
// NOR semantics are modeled faithfully: programming can only clear bits
// (1→0); an erase sets a whole sector to 0xFF.
package flash

import (
	"errors"
	"fmt"

	"flexsfp/internal/netsim"
)

// Geometry of the modeled part (Microchip/SST-class 128 Mb SPI NOR).
const (
	SizeBytes  = 128 * 1024 * 1024 / 8 // 128 Mb = 16 MiB
	SectorSize = 4096
	PageSize   = 256
	NumSectors = SizeBytes / SectorSize
)

// Datasheet-class operation timings.
const (
	SectorEraseTime = 25 * netsim.Millisecond
	PageProgramTime = 700 * netsim.Microsecond
	// ReadTimePerByte approximates a 50 MHz SPI bus: ~20 ns/byte.
	ReadTimePerByte = 20 * netsim.Nanosecond
)

// Errors.
var (
	ErrOutOfRange   = errors.New("flash: address out of range")
	ErrNotErased    = errors.New("flash: programming a non-erased cell (program can only clear bits)")
	ErrBadAlignment = errors.New("flash: misaligned operation")
)

// Device is the flash array plus wear accounting. The 16 MiB cell array
// is backed lazily, one sector at a time: a nil sector is in the erased
// state (all 0xFF) and costs nothing, so a factory-fresh device — of
// which fleet simulations construct thousands — is a few slice headers
// instead of a 16 MiB allocation.
type Device struct {
	sectors   [][]byte // per-sector cells; nil = erased (all 0xFF)
	eraseWear []uint32 // per-sector erase count

	// Stats.
	Erases   uint64
	Programs uint64
	Reads    uint64
}

// New returns a factory-fresh (all 0xFF) device.
func New() *Device {
	return &Device{
		sectors:   make([][]byte, NumSectors),
		eraseWear: make([]uint32, NumSectors),
	}
}

// sector materializes and returns the cells of the sector containing
// addr, filling it with the erased pattern on first touch.
func (d *Device) sector(addr int) []byte {
	i := addr / SectorSize
	s := d.sectors[i]
	if s == nil {
		s = make([]byte, SectorSize)
		for j := range s {
			s[j] = 0xff
		}
		d.sectors[i] = s
	}
	return s
}

// readInto copies n bytes starting at addr into out without touching the
// stats counters (shared by Read and the slot header peek).
func (d *Device) readInto(out []byte, addr, n int) {
	for n > 0 {
		s := d.sectors[addr/SectorSize]
		off := addr % SectorSize
		run := SectorSize - off
		if run > n {
			run = n
		}
		if s == nil {
			for i := 0; i < run; i++ {
				out[i] = 0xff
			}
		} else {
			copy(out[:run], s[off:off+run])
		}
		out = out[run:]
		addr += run
		n -= run
	}
}

// Read copies n bytes starting at addr into a fresh slice and returns the
// time the SPI transfer takes.
func (d *Device) Read(addr, n int) ([]byte, netsim.Duration, error) {
	if addr < 0 || n < 0 || addr+n > SizeBytes {
		return nil, 0, fmt.Errorf("%w: read [%d,%d)", ErrOutOfRange, addr, addr+n)
	}
	d.Reads++
	out := make([]byte, n)
	d.readInto(out, addr, n)
	return out, netsim.Duration(n) * ReadTimePerByte, nil
}

// EraseSector erases the sector containing addr (addr must be sector-
// aligned) and returns the erase time.
func (d *Device) EraseSector(addr int) (netsim.Duration, error) {
	if addr < 0 || addr >= SizeBytes {
		return 0, fmt.Errorf("%w: erase at %d", ErrOutOfRange, addr)
	}
	if addr%SectorSize != 0 {
		return 0, fmt.Errorf("%w: erase at %d", ErrBadAlignment, addr)
	}
	d.sectors[addr/SectorSize] = nil // back to the erased state
	d.eraseWear[addr/SectorSize]++
	d.Erases++
	return SectorEraseTime, nil
}

// ProgramPage programs up to PageSize bytes at addr (must not cross a page
// boundary) and returns the program time. Programming a bit from 0 to 1
// fails with ErrNotErased, as on real NOR.
func (d *Device) ProgramPage(addr int, data []byte) (netsim.Duration, error) {
	if addr < 0 || addr+len(data) > SizeBytes {
		return 0, fmt.Errorf("%w: program [%d,%d)", ErrOutOfRange, addr, addr+len(data))
	}
	if len(data) == 0 {
		return 0, nil
	}
	if len(data) > PageSize || addr/PageSize != (addr+len(data)-1)/PageSize {
		return 0, fmt.Errorf("%w: program crosses page boundary at %d (+%d)", ErrBadAlignment, addr, len(data))
	}
	// A page never crosses a sector (SectorSize is a multiple of PageSize).
	cells := d.sector(addr)
	off := addr % SectorSize
	for i, b := range data {
		if cells[off+i]&b != b {
			return 0, fmt.Errorf("%w: at %d", ErrNotErased, addr+i)
		}
	}
	for i, b := range data {
		cells[off+i] &= b
	}
	d.Programs++
	return PageProgramTime, nil
}

// cellAt returns a pointer to the cell at addr, materializing its sector.
func (d *Device) cellAt(addr int) *byte {
	return &d.sector(addr)[addr%SectorSize]
}

// SectorWear returns the erase count of the sector containing addr.
func (d *Device) SectorWear(addr int) uint32 {
	return d.eraseWear[addr/SectorSize]
}

// MaxWear returns the highest per-sector erase count.
func (d *Device) MaxWear() uint32 {
	var m uint32
	for _, w := range d.eraseWear {
		if w > m {
			m = w
		}
	}
	return m
}

// CorruptRange simulates a power cut mid-program: each byte in [addr,
// addr+n) is partially programmed (random bits cleared) using rnd.
func (d *Device) CorruptRange(addr, n int, rnd func() byte) error {
	if addr < 0 || n < 0 || addr+n > SizeBytes {
		return fmt.Errorf("%w: corrupt [%d,%d)", ErrOutOfRange, addr, addr+n)
	}
	for i := addr; i < addr+n; i++ {
		*d.cellAt(i) &= rnd()
	}
	return nil
}

// FlipBits simulates retention bit-rot: flips bits bits chosen by rng
// (uniformly over [addr, addr+n)), regardless of NOR program semantics —
// real charge loss can move cells in either direction.
func (d *Device) FlipBits(addr, n, bits int, rng func(int) int) error {
	if addr < 0 || n < 0 || addr+n > SizeBytes {
		return fmt.Errorf("%w: fliprange [%d,%d)", ErrOutOfRange, addr, addr+n)
	}
	if n == 0 {
		return nil
	}
	for i := 0; i < bits; i++ {
		*d.cellAt(addr + rng(n)) ^= 1 << uint(rng(8))
	}
	return nil
}

// WriteBlob erases the covered sectors and programs data at addr (sector-
// aligned), returning the total operation time. This is the primitive the
// reprogramming FSM uses to store a bitstream.
func (d *Device) WriteBlob(addr int, data []byte) (netsim.Duration, error) {
	if addr%SectorSize != 0 {
		return 0, fmt.Errorf("%w: blob at %d", ErrBadAlignment, addr)
	}
	if addr < 0 || addr+len(data) > SizeBytes {
		return 0, fmt.Errorf("%w: blob [%d,%d)", ErrOutOfRange, addr, addr+len(data))
	}
	var total netsim.Duration
	for s := addr; s < addr+len(data); s += SectorSize {
		dt, err := d.EraseSector(s)
		if err != nil {
			return total, err
		}
		total += dt
	}
	for off := 0; off < len(data); off += PageSize {
		end := off + PageSize
		if end > len(data) {
			end = len(data)
		}
		dt, err := d.ProgramPage(addr+off, data[off:end])
		if err != nil {
			return total, err
		}
		total += dt
	}
	return total, nil
}
