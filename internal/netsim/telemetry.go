package netsim

import "flexsfp/internal/telemetry"

// AttachTelemetry registers the simulator's event-loop instruments into
// reg under prefix (e.g. "sim"):
//
//   - <prefix>.pending_events, <prefix>.fired_events, <prefix>.now_ns —
//     gauges evaluated at snapshot time, zero hot-path cost;
//   - <prefix>.event_gap_ns — a histogram of how far the clock advances
//     between consecutive fired events, the event-loop lag signal: dense
//     same-timestamp backlogs pile into the low bins, an idle loop jumps
//     into the high ones.
//
// The gap histogram adds one nil-check branch per Step when attached and
// records zero-alloc/lock-free; an unattached simulator is unchanged.
func (s *Simulator) AttachTelemetry(reg *telemetry.Registry, prefix string) {
	reg.GaugeFunc(prefix+".pending_events", func() float64 { return float64(s.Pending()) })
	reg.GaugeFunc(prefix+".fired_events", func() float64 { return float64(s.Fired()) })
	reg.GaugeFunc(prefix+".now_ns", func() float64 { return float64(s.Now()) })
	// 1 ns .. ~1 ms in powers of four.
	s.gapHist = reg.Histogram(prefix+".event_gap_ns", telemetry.ExpBuckets(1, 4, 10))
	s.lastFire = s.now
}
